"""Tests for the event-level bootstrap simulation vs the analytic model."""

import pytest

from repro.errors import ParameterError
from repro.hardware.cluster import ClusterBootstrapModel
from repro.hardware.simulator import BootstrapEventSimulator


@pytest.fixture(scope="module")
def sim():
    return BootstrapEventSimulator()


class TestTimeline:
    def test_phases_present(self, sim):
        result = sim.simulate(4096, 8)
        phases = {e.phase for e in result.events}
        assert "modswitch+extract" in phases
        assert "blind-rotate" in phases
        assert "repack" in phases
        assert "steps-4-5" in phases

    def test_events_are_well_formed(self, sim):
        result = sim.simulate(4096, 8)
        for e in result.events:
            assert e.end_s >= e.start_s >= 0

    def test_every_node_computes(self, sim):
        result = sim.simulate(4096, 8)
        nodes = {e.resource for e in result.events if e.phase == "blind-rotate"}
        assert nodes == {f"node{i}" for i in range(8)}

    def test_sends_are_sequential_on_primary_port(self, sim):
        """The paper's policy: one secondary's full batch before the next."""
        result = sim.simulate(4096, 8)
        sends = [e for e in result.events if e.phase.startswith("send-batch")]
        sends.sort(key=lambda e: e.start_s)
        for a, b in zip(sends, sends[1:]):
            assert b.start_s >= a.end_s - 1e-12


class TestAgreementWithAnalyticModel:
    @pytest.mark.parametrize("n_br,nodes", [(4096, 8), (1024, 8), (4096, 4),
                                            (256, 2)])
    def test_total_latency_close(self, sim, n_br, nodes):
        analytic = ClusterBootstrapModel().bootstrap_latency_s(n_br, nodes)
        event = sim.simulate(n_br, nodes).total_s
        assert event == pytest.approx(analytic, rel=0.35), (n_br, nodes)

    def test_single_node(self, sim):
        result = sim.simulate(4096, 1)
        assert result.total_s > sim.simulate(4096, 8).total_s


class TestIdleClaim:
    def test_secondaries_not_idle(self, sim):
        """§V: "no FPGA is sitting idle" — average secondary idle fraction
        during the compute window stays below ~20%."""
        idle = sim.secondary_idle_fraction(4096, 8)
        assert idle < 0.2, idle

    def test_requires_secondaries(self, sim):
        with pytest.raises(ParameterError):
            sim.secondary_idle_fraction(4096, 1)


class TestUtilisationApi:
    def test_busy_fraction_bounds(self, sim):
        result = sim.simulate(4096, 8)
        for node_id in range(8):
            frac = result.busy_fraction(f"node{node_id}")
            assert 0.0 <= frac <= 1.0

    def test_empty_window_rejected(self, sim):
        result = sim.simulate(256, 2)
        with pytest.raises(ParameterError):
            result.busy_fraction("node1", 1.0, 1.0)

    def test_events_for_sorted(self, sim):
        result = sim.simulate(4096, 8)
        events = result.events_for("primary")
        starts = [e.start_s for e in events]
        assert starts == sorted(starts)
