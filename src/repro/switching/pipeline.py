"""Algorithm 2 as ONE staged pipeline shared by every execution path.

The scheme-switching bootstrap used to exist twice: once in
:class:`~repro.switching.bootstrap.SchemeSwitchBootstrapper` and once —
copy-pasted — in the multi-node simulation, which silently drifted (it
bypassed the engine flags and the counter-reporting repack).  This module
is now the *only* place the algorithm's arithmetic lives; the local
bootstrapper and the cluster simulation are thin shells over
:class:`BootstrapPipeline`, differing solely in the ``Executor`` plugged
into the fan-out stage::

    ModSwitch -> Extract -> BlindRotateFanout -> Repack -> Finish
    (steps 1-2)  (step 3a)  (step 3b, Executor)  (step 3c)  (steps 4-5)

Correctness sketch (per coefficient, all quantities exact integers;
``phi(x) = c0 + c1*s`` with stored representatives in ``[0, q)``):

* ``phi(ct) = [m]_q + q*K`` for an integer ``K``.
* Step 1: ``ct' = [2N * ct]_q`` so ``phi(ct') = [2N m]_q + q*K'`` with
  ``|K'| <~ ||s||_1`` (a random-walk bound, std ~ sqrt(N/18)).
* Step 2: ``ct_ms = (2N*ct - ct')/q`` is an exact integer ciphertext over
  ``Z_2N`` and ``phi(ct_ms) = J - K' (mod 2N)`` where
  ``J = floor(2N*[m]_centered/q)`` is tiny because ``|m| << q``.
* Step 3: Extract the ``N`` dimension-``N`` LWE ciphertexts of ``ct_ms``
  (Eq. 2), BlindRotate each with the test function ``g(t) = q*t`` (folded
  with ``N^{-1}`` for the repack factor), and repack: the result
  ``ct_kq`` encrypts ``q*(J - K')`` in every coefficient — this is the
  ``-k*q`` term of the paper, computed by table lookup instead of a sine
  polynomial.  Requires ``|J - K'| < N/2`` (checked probabilistically by
  parameters; violated coefficients alias).
* Step 4: ``ct'' = ct_kq + ct' (mod Qp)`` has phase
  ``q(J-K') + 2N m - qJ + qK' = 2N * m`` exactly.
* Step 5: multiply by ``w = (p-1)/2N`` (exact — ``p = 1 (mod 2N)`` for
  every NTT prime) and Rescale by ``p``: the message becomes
  ``m * (p-1)/p ~ m`` over the full basis ``Q``.  One level consumed.

The BlindRotates in step 3 are mutually independent — the parallelism the
whole paper is built on.  :class:`LocalExecutor` runs them as one
in-process batch; the cluster executor
(:class:`repro.switching.cluster_sim.ClusterExecutor`) partitions them
over simulated message-passing nodes with fault detection and recovery.
Both honour the ``blind_rotate_engine`` flag, and the repack stage always
goes through :func:`repro.tfhe.repack.repack_with_counters` with the
pipeline's ``repack_engine`` — every engine combination is bit-identical
across executors (tests assert it).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
import time
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..ckks.ciphertext import CkksCiphertext
from ..ckks.context import CkksContext
from ..errors import ParameterError
from ..math.rns import RnsBasis, RnsPoly
from ..profiling import record_fanout
from ..tfhe.blind_rotate import blind_rotate_batch, build_test_vector
from ..tfhe.glwe import GlweCiphertext
from ..tfhe.lwe import LweCiphertext
from ..tfhe.repack import repack_with_counters


@dataclass
class BootstrapTrace:
    """Step-by-step record of ONE bootstrap execution (drives the
    Figure-1 bench and the scheduler).

    ``repack_keyswitches`` is the *true* keyswitch count sourced from the
    repack engine's counters: ``n - 1`` merge-tree nodes plus one per
    trace level (earlier revisions reported only the ``log2 n`` level
    count).  ``step_seconds`` holds wall-clock per pipeline stage
    (``extract`` / ``blind_rotate`` / ``repack`` / ``finish``) — the
    Figure-1-style share breakdown — and ``node_seconds`` the fan-out
    stage's per-node share (simulated seconds: measured wall-clock plus
    any injected straggler delay; a local run reports ``{0: t}``).

    Reuse semantics: a trace describes exactly one run.  Passing the same
    instance into another ``bootstrap()`` call **resets every field
    first** — scalars, ``step_seconds``, ``node_seconds`` and ``notes``
    alike — so counters never mix two runs and ``notes`` cannot grow
    unboundedly (an earlier revision overwrote the timings but appended
    the notes forever).
    """

    num_lwe: int = 0
    num_blind_rotates: int = 0
    modswitch_ops: int = 0
    repack_keyswitches: int = 0
    repack_merge_keyswitches: int = 0
    repack_trace_keyswitches: int = 0
    step_seconds: Dict[str, float] = field(default_factory=dict)
    #: Fan-out time per node id (simulated: wall-clock + straggler delay).
    node_seconds: Dict[int, float] = field(default_factory=dict)
    #: Recovery re-dispatches performed after a detected node fault.
    fanout_retries: int = 0
    #: LWE ciphertexts re-sent by those re-dispatches.
    fanout_redispatched_lwes: int = 0
    #: Nodes declared dead during the fan-out (crash or timeout).
    failed_nodes: List[int] = field(default_factory=list)
    #: One-time worker-pool spin-up cost amortised over this run's batch
    #: (zero for in-process executors; the multiprocessing pool reports
    #: fork + shared-key-attach + handshake time here).
    pool_spinup_seconds: float = 0.0
    #: Bytes of key material published into shared memory for this run's
    #: executor (zero when keys live in-process).
    shared_key_bytes: int = 0
    #: Dead worker processes respawned during the fan-out.
    worker_respawns: int = 0
    notes: List[str] = field(default_factory=list)

    def reset(self) -> None:
        """Return every field to its default (called on entry by every
        bootstrap so a reused trace records only the latest run)."""
        blank = BootstrapTrace()
        for f in fields(self):
            setattr(self, f.name, getattr(blank, f.name))


# -- stage 1-2: ModSwitch ---------------------------------------------------------


@dataclass(frozen=True)
class ModSwitched:
    """Output of Algorithm 2 steps 1-2 (exact integer identity
    ``2N*x = q*floor(2N*x/q) + [2N*x]_q`` applied componentwise):
    ``(c0', c1')`` are the mod-``q`` remainders kept for the Finish
    stage's step-4 addition, ``(c0_ms, c1_ms)`` the ``Z_2N`` quotient
    ciphertext the LWE extraction consumes."""

    c0_prime: np.ndarray
    c1_prime: np.ndarray
    c0_ms: np.ndarray
    c1_ms: np.ndarray


def mod_switch(ct: CkksCiphertext, two_n: int, q: int) -> ModSwitched:
    """Steps 1-2: split ``2N * ct`` into its mod-``q`` and ``Z_2N`` parts."""
    c0 = np.asarray(ct.c0.to_coeff().limbs[0], dtype=object)
    c1 = np.asarray(ct.c1.to_coeff().limbs[0], dtype=object)
    c0_prime = (two_n * c0) % q
    c1_prime = (two_n * c1) % q
    return ModSwitched(
        c0_prime=c0_prime,
        c1_prime=c1_prime,
        c0_ms=(two_n * c0 - c0_prime) // q,
        c1_ms=(two_n * c1 - c1_prime) // q,
    )


# -- stage 3a: Extract ------------------------------------------------------------


def extract_mod_2n(c1_ms: np.ndarray, c0_ms: np.ndarray, index: int,
                   two_n: int) -> LweCiphertext:
    """Eq. 2 extraction directly over ``Z_2N`` components."""
    head = c1_ms[: index + 1][::-1]
    tail = c1_ms[index + 1:][::-1]
    neg_tail = (-tail) % two_n
    a = np.concatenate([head, neg_tail]) % two_n
    return LweCiphertext(a=a.astype(np.int64), b=int(c0_ms[index]) % two_n,
                         q=two_n)


def extract_lwes(ms: ModSwitched, two_n: int) -> List[LweCiphertext]:
    """Step 3a: the ``N`` dimension-``N`` LWE ciphertexts of ``ct_ms``."""
    return [extract_mod_2n(ms.c1_ms, ms.c0_ms, i, two_n)
            for i in range(len(ms.c0_ms))]


# -- stage 3b: BlindRotateFanout (pluggable) --------------------------------------


class Executor(Protocol):
    """The fan-out stage's execution backend.

    Implementations run the batch of mutually-independent BlindRotates
    and return one accumulator per input LWE, in input order.  They must
    honour ``blind_rotate_engine`` and report per-node timing (plus any
    retry activity) on the trace.

    ``lut`` selects the test vector for the whole batch: ``None`` is the
    Algorithm-2 switching vector every executor is constructed with; a
    string is a :class:`~repro.switching.luts.LutRegistry` id resolved
    against the executor's key set (one fan-out tensor shares one test
    vector, which is why the service batches PBS requests per LUT).
    """

    blind_rotate_engine: str

    def fanout(self, lwes: Sequence[LweCiphertext],
               trace: BootstrapTrace,
               lut: Optional[str] = None) -> List[GlweCiphertext]:
        ...


def _registry_vector(keys, lut_id: str) -> RnsPoly:
    """Resolve a LUT id against a key set's registry (shared by every
    executor's programmable path)."""
    luts = getattr(keys, "luts", None)
    if luts is None:
        raise ParameterError(
            "programmable bootstrapping needs a key set with a LUT "
            "registry (SwitchingKeySet / StreamingSwitchingKeys)")
    return luts.vector(lut_id)


class LocalExecutor:
    """The in-process fan-out: the whole batch as one
    :func:`~repro.tfhe.blind_rotate.blind_rotate_batch` call (the paper's
    §IV-E schedule), on the selected engine."""

    def __init__(self, keys, test_vector: RnsPoly,
                 blind_rotate_engine: str = "vectorized"):
        self.keys = keys
        self.test_vector = test_vector
        self.blind_rotate_engine = blind_rotate_engine

    def fanout(self, lwes: Sequence[LweCiphertext],
               trace: BootstrapTrace,
               lut: Optional[str] = None) -> List[GlweCiphertext]:
        tv = self.test_vector if lut is None \
            else _registry_vector(self.keys, lut)
        t0 = time.perf_counter()
        accs = blind_rotate_batch(tv, lwes, self.keys.brk,
                                  engine=self.blind_rotate_engine)
        trace.node_seconds[0] = time.perf_counter() - t0
        record_fanout(dispatches=1)
        return accs


# -- stage 5: Finish --------------------------------------------------------------


def finish(packed: GlweCiphertext, ms: ModSwitched, raised_basis: RnsBasis,
           n: int, two_n: int, scale: float,
           trace: BootstrapTrace) -> CkksCiphertext:
    """Steps 4-5: raise ``ct'`` to ``Qp`` and add, multiply by
    ``w = (p-1)/2N`` (exact: ``p = 1 mod 2N``), rescale by ``p``."""
    ct_prime = GlweCiphertext(
        mask=[RnsPoly.from_int_coeffs(n, raised_basis, ms.c1_prime)],
        body=RnsPoly.from_int_coeffs(n, raised_basis, ms.c0_prime),
    )
    ct_dprime = packed + ct_prime
    p = raised_basis.moduli[-1]
    w = (p - 1) // two_n
    body = (ct_dprime.body * w).rescale_last_limb().to_eval()
    mask = (ct_dprime.mask[0] * w).rescale_last_limb().to_eval()
    trace.notes.append(f"rescaled by p={p}, w=(p-1)/2N={w}")
    return CkksCiphertext(c0=body, c1=mask, scale=scale)


def finish_pbs(packed: GlweCiphertext, scale: float) -> CkksCiphertext:
    """The programmable path's Finish: no step-4 addition, no ``w``
    multiply — the LUT already encodes ``f`` at scale ``Delta * p``
    (pre-divided by ``N`` for the repack factor), so finishing is just
    the rescale by ``p`` that drops the raised limb."""
    body = packed.body.rescale_last_limb().to_eval()
    mask = packed.mask[0].rescale_last_limb().to_eval()
    return CkksCiphertext(c0=body, c1=mask, scale=scale)


# -- the pipeline -----------------------------------------------------------------


@dataclass(frozen=True)
class PreparedRequest:
    """Stages 1-3a of one ciphertext, held between ``prepare`` and
    ``complete`` while the fan-out runs — possibly coalesced with other
    requests' LWEs into a single executor batch (``repro.service``).

    ``seconds`` is the ModSwitch+Extract wall-clock (the trace's
    ``extract`` share).

    ``kind`` selects the Finish stage: ``"switching"`` is Algorithm 2
    (step-4 addition against ``ms`` then the ``w``-multiply rescale);
    ``"pbs"`` is the programmable path, whose rounding ModSwitch keeps
    no remainder — ``ms`` is ``None`` and Finish is the bare rescale."""

    ms: Optional[ModSwitched]
    lwes: List[LweCiphertext]
    scale: float
    seconds: float
    kind: str = "switching"


class BootstrapPipeline:
    """Executes Algorithm 2 end to end with a pluggable fan-out executor.

    With ``executor=None`` a :class:`LocalExecutor` on
    ``blind_rotate_engine`` is built (the single-node path); the cluster
    simulation passes its message-passing executor instead.  The repack
    stage runs on the primary either way, through the counter-reporting
    dispatcher with this pipeline's ``repack_engine``.

    The per-ciphertext stages are also exposed separately —
    :meth:`prepare` (ModSwitch + Extract) and :meth:`complete`
    (Repack + Finish) — so a caller can run the fan-out stage *across*
    requests: every BlindRotate is independent, so the LWEs of many
    prepared ciphertexts can travel through one ``executor.fanout`` batch
    and be sliced back per request with bit-identical results
    (:meth:`run_many`, and the coalescing bootstrap service built on it).
    """

    def __init__(self, ctx: CkksContext, keys,
                 executor: Optional[Executor] = None,
                 blind_rotate_engine: str = "vectorized",
                 repack_engine: str = "vectorized"):
        self.ctx = ctx
        self.keys = keys
        self.raised_basis = keys.raised_basis
        self.repack_engine = repack_engine
        self.test_vector = keys.test_vector(ctx.n, ctx.full_basis.moduli[0])
        self.executor: Executor = executor if executor is not None else \
            LocalExecutor(keys, self.test_vector, blind_rotate_engine)

    @property
    def blind_rotate_engine(self) -> str:
        """The fan-out stage's engine (owned by the executor)."""
        return self.executor.blind_rotate_engine

    def prepare(self, ct: CkksCiphertext) -> PreparedRequest:
        """Stages ModSwitch + Extract (steps 1-3a) for one ciphertext."""
        if ct.level != 0:
            raise ParameterError(
                f"scheme-switching bootstrap consumes a level-0 ciphertext, "
                f"got level {ct.level}")
        two_n = 2 * self.ctx.n
        q = ct.basis.moduli[0]
        t0 = time.perf_counter()
        ms = mod_switch(ct, two_n, q)
        lwes = extract_lwes(ms, two_n)
        return PreparedRequest(ms=ms, lwes=lwes, scale=ct.scale,
                               seconds=time.perf_counter() - t0)

    def prepare_pbs(self, ct: CkksCiphertext,
                    extract_engine: str = "vectorized") -> PreparedRequest:
        """The programmable path's ModSwitch + Extract: the ``N``
        coefficient-wise LWEs of ``ct`` under the *rounding* modswitch to
        ``Z_2N`` (``(a*2N + q/2) // q``), which keeps no mod-``q``
        remainder — the LUT's Finish has no step-4 addition to make."""
        if ct.level != 0:
            raise ParameterError(
                f"programmable bootstrap consumes a level-0 ciphertext, "
                f"got level {ct.level}")
        from .functional import pbs_extract
        t0 = time.perf_counter()
        lwes = pbs_extract(ct, engine=extract_engine)
        return PreparedRequest(ms=None, lwes=lwes, scale=ct.scale,
                               seconds=time.perf_counter() - t0, kind="pbs")

    def resolve_lut(self, f, scale: float) -> str:
        """Resolve a function / :class:`~repro.switching.luts.LutSpec` /
        workload name into a built-and-cached LUT id on this pipeline's
        key registry (ready for ``executor.fanout(..., lut=id)``)."""
        luts = getattr(self.keys, "luts", None)
        if luts is None:
            raise ParameterError(
                "programmable bootstrapping needs a key set with a LUT "
                "registry (SwitchingKeySet / StreamingSwitchingKeys)")
        return luts.resolve(f, self.ctx.n, self.ctx.full_basis.moduli[0],
                            scale)

    def complete(self, prep: PreparedRequest, accs: Sequence[GlweCiphertext],
                 trace: BootstrapTrace) -> CkksCiphertext:
        """Stages Repack + Finish (steps 3c-5) for one prepared request's
        own accumulators (exactly ``len(prep.lwes)`` of them, in extract
        order).  Counters and step timings *accumulate* onto ``trace`` so
        several completions can share one coalesced-run trace.  The
        Finish stage follows ``prep.kind`` — switching and PBS requests
        can ride through the same coalesced fan-out."""
        n = self.ctx.n
        t2 = time.perf_counter()
        packed, repack_ctr = repack_with_counters(list(accs),
                                                  self.keys.auto_keys,
                                                  engine=self.repack_engine)
        trace.repack_merge_keyswitches += repack_ctr.merge_keyswitches
        trace.repack_trace_keyswitches += repack_ctr.trace_keyswitches
        trace.repack_keyswitches += repack_ctr.total_keyswitches
        t3 = time.perf_counter()
        if prep.kind == "pbs":
            out = finish_pbs(packed, prep.scale)
        else:
            out = finish(packed, prep.ms, self.raised_basis, n, 2 * n,
                         prep.scale, trace)
        t4 = time.perf_counter()
        step = trace.step_seconds
        step["repack"] = step.get("repack", 0.0) + (t3 - t2)
        step["finish"] = step.get("finish", 0.0) + (t4 - t3)
        return out

    def run(self, ct: CkksCiphertext,
            trace: Optional[BootstrapTrace] = None) -> CkksCiphertext:
        """Refresh a level-0 ciphertext to the top level (minus one)."""
        if ct.level != 0:
            raise ParameterError(
                f"scheme-switching bootstrap consumes a level-0 ciphertext, "
                f"got level {ct.level}")
        trace = trace if trace is not None else BootstrapTrace()
        trace.reset()

        # Stages ModSwitch + Extract (steps 1-3a).
        prep = self.prepare(ct)
        trace.modswitch_ops = 2 * self.ctx.n
        trace.num_lwe = len(prep.lwes)
        trace.step_seconds["extract"] = prep.seconds

        # Stage BlindRotateFanout (step 3b) — the pluggable part.
        t1 = time.perf_counter()
        accs = self.executor.fanout(prep.lwes, trace)
        trace.num_blind_rotates = len(accs)
        trace.step_seconds["blind_rotate"] = time.perf_counter() - t1

        # Stages Repack + Finish (steps 3c-5).
        return self.complete(prep, accs, trace)

    def run_pbs(self, ct: CkksCiphertext, f,
                trace: Optional[BootstrapTrace] = None,
                extract_engine: str = "vectorized") -> CkksCiphertext:
        """Programmable bootstrap: evaluate ``f`` coefficient-wise on a
        level-0 ciphertext through the SAME staged pipeline as Algorithm 2
        — only the ModSwitch/Extract kernel, the fan-out's test vector
        (``f``'s LUT, resolved on the key registry) and the Finish stage
        differ.  ``f`` may be a plain callable, a
        :class:`~repro.switching.luts.LutSpec`, or a workload name."""
        trace = trace if trace is not None else BootstrapTrace()
        trace.reset()
        lut_id = self.resolve_lut(f, ct.scale)

        prep = self.prepare_pbs(ct, extract_engine=extract_engine)
        trace.modswitch_ops = 2 * self.ctx.n
        trace.num_lwe = len(prep.lwes)
        trace.step_seconds["extract"] = prep.seconds

        t1 = time.perf_counter()
        accs = self.executor.fanout(prep.lwes, trace, lut=lut_id)
        trace.num_blind_rotates = len(accs)
        trace.step_seconds["blind_rotate"] = time.perf_counter() - t1

        return self.complete(prep, accs, trace)

    def run_many(self, cts: Sequence[CkksCiphertext],
                 trace: Optional[BootstrapTrace] = None
                 ) -> List[CkksCiphertext]:
        """Bootstrap several ciphertexts with ONE coalesced fan-out.

        All requests' extracted LWEs travel through a single
        ``executor.fanout`` batch — the engines' batched tensors fill up
        across requests — and the accumulators are sliced back per
        request for individual Repack + Finish.  Because every
        BlindRotate is an independent exact computation, each output is
        bit-identical to a solo :meth:`run` of the same ciphertext
        (tests assert it); ``trace`` holds the whole coalesced run.
        """
        trace = trace if trace is not None else BootstrapTrace()
        trace.reset()
        preps = [self.prepare(ct) for ct in cts]
        trace.modswitch_ops = 2 * self.ctx.n * len(preps)
        trace.step_seconds["extract"] = sum(p.seconds for p in preps)
        all_lwes: List[LweCiphertext] = []
        spans: List[Tuple[int, int]] = []
        for prep in preps:
            spans.append((len(all_lwes), len(all_lwes) + len(prep.lwes)))
            all_lwes.extend(prep.lwes)
        trace.num_lwe = len(all_lwes)

        t1 = time.perf_counter()
        accs = self.executor.fanout(all_lwes, trace)
        trace.num_blind_rotates = len(accs)
        trace.step_seconds["blind_rotate"] = time.perf_counter() - t1

        return [self.complete(prep, accs[start:stop], trace)
                for prep, (start, stop) in zip(preps, spans)]


def build_switching_test_vector(n: int, q: int, raised: RnsBasis) -> RnsPoly:
    """The Algorithm-2 LUT: ``g(t) = q * t`` on ``[0, N/2)``,
    anti-periodically extended, pre-multiplied by ``N^{-1} mod Qp`` to
    cancel the repack factor.  Built once per key set
    (:meth:`~repro.switching.keys.SwitchingKeySet.test_vector`) and shared
    by the local executor and every simulated cluster node."""
    big_qp = raised.product
    n_inv = pow(n, -1, big_qp)

    def g(t: int) -> int:
        t = t % (2 * n)
        if t < n // 2:
            val = q * t
        elif t < n:
            val = q * (n - t)          # anti-periodic filler
        elif t < 3 * n // 2:
            val = -q * (t - n)
        else:
            val = -q * (n - (t - n))   # = q*(t - 2N) on the wrap side
        return (val * n_inv) % big_qp

    return build_test_vector(g, n, raised)
