"""heaplint: AST-based crypto-invariant checks for this repository.

The hot paths bought their speedups with tricks whose correctness rests
on invariants Python never checks — uint64 accumulation bounds, eval-
versus coefficient-domain operand discipline, fixed-width versus
object-dtype arrays, secret-key hygiene, validated parameter
construction.  This package encodes those invariants as static rules
over the repo's own AST (stdlib :mod:`ast` only, no third-party
dependencies) with per-rule codes, an inline suppression syntax and a
checked-in baseline for pre-existing findings.

Since the serving layer went concurrent (asyncio coalescer, process
pool, thread-local engine workspaces) the pack has two layers: the
HL0xx rules stay single-file, while the HL1xx concurrency rules run
over a repo-wide call graph built by :mod:`repro.lint.dataflow`
(entry-point reachability from coroutines, thread targets, and worker
mains).

Run it as ``python -m repro.lint src tests benchmarks``; see
``DESIGN.md`` sections 8 and 13 for the rule catalogue and workflow.
"""

from __future__ import annotations

from .concurrency_rules import (
    AsyncHygieneRule,
    ProcessPayloadRule,
    SharedArrayAliasingRule,
    SharedMutableStateRule,
)
from .core import (
    BAD_SUPPRESSION_CODE,
    Baseline,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from .dataflow import EntryPoint, FunctionInfo, MutableGlobal, ProjectIndex
from .rules import (
    HotPathObjectDtypeRule,
    LazyBoundProofRule,
    NttDomainDisciplineRule,
    ParamConstructionRule,
    SecretHygieneRule,
)

__all__ = [
    "BAD_SUPPRESSION_CODE",
    "Baseline",
    "FileContext",
    "Finding",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "EntryPoint",
    "FunctionInfo",
    "MutableGlobal",
    "ProjectIndex",
    "HotPathObjectDtypeRule",
    "LazyBoundProofRule",
    "NttDomainDisciplineRule",
    "ParamConstructionRule",
    "SecretHygieneRule",
    "AsyncHygieneRule",
    "ProcessPayloadRule",
    "SharedArrayAliasingRule",
    "SharedMutableStateRule",
]
