"""Key material for the scheme-switching bootstrap.

One :class:`SwitchingKeySet` holds everything Algorithm 2 needs:

* **blind-rotate keys** ``brk = {RGSW(s_i^+), RGSW(s_i^-)}`` — RGSW
  encryptions (over the raised basis ``Q * p``) of the indicator digits of
  the *CKKS* secret, under that same secret viewed as a GLWE key.  The
  accumulator key equals the CKKS key so that the blind-rotate output can
  be added directly to the raised ciphertext in step 4 of Algorithm 2.
* **repacking keys** — automorphism key-switch keys for the ``log2 N``
  exponents used by the LWE-to-RLWE repack.

Size audit helpers implement the paper's Section III-C accounting and are
exercised by the key-size benchmark (0.44 MB ciphertext, ~3.52 MB per
brk entry, 1.76 GB total, ~18x less key traffic than conventional
bootstrapping).

Note on dimensions: the paper key-switches extracted LWE ciphertexts down
to ``n_t = 500`` before blind rotation, so its brk has 500 entries.  Our
functional pipeline blind-rotates at dimension ``N`` directly (exactly as
Algorithm 2 is written — its Extract produces dimension-``N`` LWE
ciphertexts and there is no key-switch step in the algorithm listing);
the ``n_t`` distinction is honoured by the performance model and by
:meth:`SwitchingKeySet.paper_sizes`, and DESIGN.md records the
substitution.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

import numpy as np

from ..ckks.context import CkksContext
from ..ckks.keys import SecretKey
from ..errors import ParameterError
from ..io import SeededKeyMaterial
from ..math.gadget import GadgetVector
from ..math.rns import RnsBasis, RnsPoly, concat_bases
from ..math.sampling import Sampler, mask_stream
from ..params import TfheParams
from ..tfhe.blind_rotate import BlindRotateKey
from ..tfhe.glwe import GlweSecretKey
from ..tfhe.keyswitch import (AutomorphismKeySet, GlweKeySwitchKey,
                              expand_glwe_keyswitch_key)
from ..tfhe.lwe import LweSecretKey
from ..tfhe.repack import repack_exponents
from ..tfhe.rgsw import expand_rgsw, rgsw_bodies
from .luts import LutRegistry


def rns_poly_bytes(poly: RnsPoly) -> int:
    """Resident bytes of one RNS polynomial: ``nbytes`` of each machine-
    dtype limb; wide (``object``-dtype) limbs priced at the paper's
    §III-C coefficient width of ``ceil(log2 q_i / 8)`` bytes per slot."""
    total = 0
    for q, limb in zip(poly.basis.moduli, poly.limbs):
        arr = np.asarray(limb)
        if arr.dtype == object:
            total += arr.size * ((int(q).bit_length() + 7) // 8)
        else:
            total += arr.nbytes
    return total


@dataclass
class SwitchingKeySet:
    """Blind-rotate + repacking keys over the raised basis ``Q * p``."""

    brk: BlindRotateKey
    auto_keys: AutomorphismKeySet
    raised_basis: RnsBasis
    gadget: GadgetVector
    #: Kept for tests/debug decryption only; ``None`` for key sets
    #: expanded from seed+``b`` material (the secret never travels).
    glwe_sk_ref: Optional[GlweSecretKey] = None
    #: Master key seed when generated seeded; ``None`` for eager keys.
    key_seed: Optional[int] = field(default=None, repr=False, compare=False)
    #: The per-key-set LUT registry: caches the Algorithm-2 test vector
    #: (as the old ``(n, q)`` dict did) *and* every programmable LUT
    #: built against this key set, shared by every execution path —
    #: local pipeline, simulated cluster nodes, and the process pool's
    #: shared-memory publisher.  Built in ``__post_init__``.
    luts: Optional[LutRegistry] = field(default=None, repr=False,
                                        compare=False)

    def __post_init__(self) -> None:
        if self.luts is None:
            self.luts = LutRegistry(self.raised_basis)

    def resident_bytes(self) -> int:
        """Measured bytes of this key set's polynomial material — the
        blind-rotate RGSW entries plus every automorphism key-switch key
        (the quantities §III-C audits by formula; ``bench_keysizes.py``
        checks the formula against the paper, this counts the *actual*
        resident arrays).  The service's LRU key cache charges each user
        this amount (ARK direction: bound the resident key working set).

        Machine-dtype limbs are priced at ``ndarray.nbytes``; wide
        (``object``-dtype) limbs at the §III-C coefficient width
        ``ceil(log2 q / 8)`` bytes per slot, since a Python-int pointer
        array has no meaningful ``nbytes``.
        """
        total = sum(rns_poly_bytes(p) for rgsw in
                    list(self.brk.plus) + list(self.brk.minus)
                    for row in rgsw.rows for ct in row
                    for p in list(ct.mask) + [ct.body])
        for ksk in self.auto_keys.keys.values():
            total += sum(rns_poly_bytes(p) for ct in ksk.rows
                         for p in list(ct.mask) + [ct.body])
        return total

    def test_vector(self, n: int, q: int) -> RnsPoly:
        """The Algorithm-2 blind-rotate LUT over this key set's raised
        basis (``g(t) = q*t`` folded with ``N^{-1}``), built once per
        ``(n, q)`` and reused.  Delegates to the :class:`LutRegistry` —
        one thread-safe implementation for both key-set classes, where
        each used to carry its own unlocked check-then-act dict (racy
        under the service's batch threads)."""
        return self.luts.switching_vector(n, q)

    @classmethod
    def generate(cls, ctx: CkksContext, sk: SecretKey,
                 sampler: Optional[Sampler] = None,
                 base_bits: int = 6,
                 error_std: float = 1.0) -> "SwitchingKeySet":
        """Generate switching keys for a CKKS context and secret.

        ``base_bits`` sizes the gadget used by both the external products
        of BlindRotate and the repacking key switches; smaller digits mean
        lower noise but more work per external product (the paper's
        ``d = 2`` corresponds to a very coarse digit over its 252-bit
        raised modulus).
        """
        sampler = sampler or Sampler()
        raised = concat_bases(ctx.full_basis, RnsBasis([ctx.special_basis.moduli[0]]))
        total_bits = raised.product.bit_length()
        # Floor division: the couple of uncovered low-order bits only add
        # +-2^(bits mod base) of rounding noise, far below the error term.
        digits = max(1, total_bits // base_bits)
        gadget = GadgetVector(q=raised.product, base_bits=base_bits, digits=digits)
        glwe_sk = GlweSecretKey(coeffs=[np.asarray(sk.coeffs, dtype=object)], n=ctx.n)
        lwe_view = LweSecretKey(coeffs=np.asarray(sk.coeffs, dtype=object))
        brk = BlindRotateKey.generate(lwe_view, glwe_sk, raised, gadget, sampler,
                                      error_std=error_std)
        auto_keys = AutomorphismKeySet.generate(
            glwe_sk, repack_exponents(ctx.n), raised, gadget, sampler,
            error_std=error_std)
        return cls(brk=brk, auto_keys=auto_keys, raised_basis=raised,
                   gadget=gadget, glwe_sk_ref=glwe_sk)

    @classmethod
    def generate_seeded(cls, ctx: CkksContext, sk: SecretKey, key_seed: int,
                        noise: Optional[Sampler] = None,
                        base_bits: int = 6,
                        error_std: float = 1.0) -> "SwitchingKeySet":
        """Generate the key set with every uniform ``a``-half derived from
        ``key_seed`` (ARK-style seeded schedule).

        Same parameters and structure as :meth:`generate`, but each
        blind-rotate RGSW and each automorphism key-switch key streams
        its masks from a :func:`~repro.math.sampling.derive_seed` child of
        ``key_seed``.  The result supports :meth:`compress` — only bodies
        and seeds at rest, ~``(h+1)``x smaller — and any holder of the
        compressed form re-expands the identical ciphertexts.  Noise is
        drawn from ``noise`` (fresh entropy; never stored or replayed).
        """
        noise = noise or Sampler()
        raised = concat_bases(ctx.full_basis, RnsBasis([ctx.special_basis.moduli[0]]))
        total_bits = raised.product.bit_length()
        digits = max(1, total_bits // base_bits)
        gadget = GadgetVector(q=raised.product, base_bits=base_bits, digits=digits)
        glwe_sk = GlweSecretKey(coeffs=[np.asarray(sk.coeffs, dtype=object)], n=ctx.n)
        lwe_view = LweSecretKey(coeffs=np.asarray(sk.coeffs, dtype=object))
        brk = BlindRotateKey.generate_seeded(lwe_view, glwe_sk, raised, gadget,
                                             key_seed, noise, error_std=error_std)
        auto_keys = AutomorphismKeySet.generate_seeded(
            glwe_sk, repack_exponents(ctx.n), raised, gadget, key_seed, noise,
            error_std=error_std)
        return cls(brk=brk, auto_keys=auto_keys, raised_basis=raised,
                   gadget=gadget, glwe_sk_ref=glwe_sk, key_seed=key_seed)

    def compress(self) -> SeededKeyMaterial:
        """Extract the seed+``b`` at-rest form of a seeded key set.

        Bodies are stacked per limb into fixed-width evaluation-domain
        arrays (``brk_b_<li>`` of shape ``(n_t, 2, (h+1)d, N)``,
        ``auto_b_<li>`` of shape ``(T, d, N)``); the meta carries the
        public parameters plus the per-component mask seeds.  Requires a
        set produced by :meth:`generate_seeded` — eager keys have payload
        material in their masks and cannot be reduced to seeds.
        """
        if self.brk.mask_seeds is None or self.auto_keys.mask_seeds is None:
            raise ParameterError(
                "only seeded key sets compress to seed+b form — "
                "use SwitchingKeySet.generate_seeded")
        basis = self.raised_basis
        n = self.brk.plus[0].n
        h = self.brk.h
        d = self.gadget.digits
        rows = (h + 1) * d
        n_t = self.brk.n_t
        exps = sorted(self.auto_keys.keys)
        num_limbs = len(basis.moduli)
        brk_b = [np.empty((n_t, 2, rows, n), dtype=np.int64) for _ in range(num_limbs)]
        for i in range(n_t):
            for pm, rgsw in ((0, self.brk.plus[i]), (1, self.brk.minus[i])):
                for r, body in enumerate(rgsw_bodies(rgsw)):
                    for li, limb in enumerate(body.to_eval().limbs):
                        arr = np.asarray(limb)
                        if arr.dtype == object:
                            raise ParameterError(
                                "wide-modulus limbs cannot compress to "
                                "fixed-width seeded material")
                        brk_b[li][i, pm, r] = arr
        auto_b = [np.empty((len(exps), d, n), dtype=np.int64) for _ in range(num_limbs)]
        for ti, t in enumerate(exps):
            for k, body in enumerate(self.auto_keys.keys[t].bodies()):
                for li, limb in enumerate(body.to_eval().limbs):
                    auto_b[li][ti, k] = np.asarray(limb)
        bodies = {f"brk_b_{li}": brk_b[li] for li in range(num_limbs)}
        bodies.update({f"auto_b_{li}": auto_b[li] for li in range(num_limbs)})
        meta = {
            "n": n, "h": h, "n_t": n_t,
            "moduli": [int(q) for q in basis.moduli],
            "gadget_base_bits": self.gadget.base_bits,
            "gadget_digits": d,
            "key_seed": self.key_seed,
            "brk_mask_seeds": [[int(p), int(m)] for p, m in self.brk.mask_seeds],
            "auto_exponents": [int(t) for t in exps],
            "auto_mask_seeds": [int(self.auto_keys.mask_seeds[t]) for t in exps],
        }
        return SeededKeyMaterial(kind="switching", meta=meta, bodies=bodies)


# -- seed + b-half expansion (ARK-style streaming keys) ---------------------------


def _material_params(material: SeededKeyMaterial):
    """Decode the public parameters of a ``"switching"`` material."""
    if material.kind != "switching":
        raise ParameterError(
            f"expected 'switching' seeded material, got {material.kind!r}")
    meta = material.meta
    basis = RnsBasis([int(q) for q in meta["moduli"]])  # type: ignore[union-attr]
    gadget = GadgetVector(q=basis.product,
                          base_bits=int(meta["gadget_base_bits"]),  # type: ignore[arg-type]
                          digits=int(meta["gadget_digits"]))  # type: ignore[arg-type]
    return basis, gadget


def _expand_brk_entry(material: SeededKeyMaterial, basis: RnsBasis,
                      gadget: GadgetVector, i: int):
    """Expand blind-rotate entry ``i`` to its ``(plus, minus)`` RGSW pair."""
    meta = material.meta
    n = int(meta["n"])  # type: ignore[arg-type]
    h = int(meta["h"])  # type: ignore[arg-type]
    rows = (h + 1) * gadget.digits
    limbs = [material.bodies[f"brk_b_{li}"] for li in range(len(basis.moduli))]
    seed_p, seed_m = meta["brk_mask_seeds"][i]  # type: ignore[index]
    out = []
    for pm, seed in ((0, seed_p), (1, seed_m)):
        bodies = [RnsPoly(n, basis, [lb[i, pm, r] for lb in limbs], "eval")
                  for r in range(rows)]
        out.append(expand_rgsw(mask_stream(int(seed)), bodies, basis, gadget, h))
    return out[0], out[1]


def _expand_auto_key(material: SeededKeyMaterial, basis: RnsBasis,
                     gadget: GadgetVector, t: int) -> GlweKeySwitchKey:
    """Expand the automorphism key for exponent ``t``."""
    meta = material.meta
    n = int(meta["n"])  # type: ignore[arg-type]
    h = int(meta["h"])  # type: ignore[arg-type]
    exps = [int(x) for x in meta["auto_exponents"]]  # type: ignore[union-attr]
    ti = exps.index(t)
    seed = int(meta["auto_mask_seeds"][ti])  # type: ignore[index]
    limbs = [material.bodies[f"auto_b_{li}"] for li in range(len(basis.moduli))]
    bodies = [RnsPoly(n, basis, [lb[ti, k] for lb in limbs], "eval")
              for k in range(gadget.digits)]
    return expand_glwe_keyswitch_key(mask_stream(seed), bodies, h, basis, gadget)


def expand_switching_keys(material: SeededKeyMaterial) -> SwitchingKeySet:
    """Eagerly expand a compressed key set — bit-identical to the
    :meth:`SwitchingKeySet.generate_seeded` output it was compressed
    from (``glwe_sk_ref`` excepted: the secret is not in the material)."""
    basis, gadget = _material_params(material)
    meta = material.meta
    n_t = int(meta["n_t"])  # type: ignore[arg-type]
    plus, minus = [], []
    for i in range(n_t):
        p, m = _expand_brk_entry(material, basis, gadget, i)
        plus.append(p)
        minus.append(m)
    h = int(meta["h"])  # type: ignore[arg-type]
    seeds = [(int(p), int(m)) for p, m in meta["brk_mask_seeds"]]  # type: ignore[union-attr]
    brk = BlindRotateKey(plus=plus, minus=minus, gadget=gadget, h=h,
                         mask_seeds=seeds)
    exps = [int(t) for t in meta["auto_exponents"]]  # type: ignore[union-attr]
    auto = AutomorphismKeySet(
        keys={t: _expand_auto_key(material, basis, gadget, t) for t in exps},
        mask_seeds={t: int(s) for t, s in
                    zip(exps, meta["auto_mask_seeds"])})  # type: ignore[arg-type]
    return SwitchingKeySet(brk=brk, auto_keys=auto, raised_basis=basis,
                           gadget=gadget, glwe_sk_ref=None,
                           key_seed=meta.get("key_seed"))  # type: ignore[arg-type]


class _LazyAutoKeyDict(Mapping):
    """Per-exponent expand-on-access mapping backing a streaming
    :class:`~repro.tfhe.keyswitch.AutomorphismKeySet`.

    ``keys.keys[t]`` (and therefore ``key_for(t)``) materialises exactly
    the exponent the repack path touches; iteration walks the known
    exponent list without forcing expansion of the rest.
    """

    def __init__(self, owner: "StreamingSwitchingKeys"):
        self._owner = owner
        self._exponents = [int(t) for t in owner.material.meta["auto_exponents"]]  # type: ignore[union-attr]
        self._expanded: Dict[int, GlweKeySwitchKey] = {}

    def __getitem__(self, t: int) -> GlweKeySwitchKey:
        key = self._expanded.get(t)
        if key is None:
            if t not in self._exponents:
                raise KeyError(t)
            key = self._owner._expand_auto(t)
            self._expanded[t] = key
        return key

    def __iter__(self) -> Iterator[int]:
        return iter(self._exponents)

    def __len__(self) -> int:
        return len(self._exponents)


class StreamingSwitchingKeys:
    """Lazy seed+``b``-resident key provider, duck-typing
    :class:`SwitchingKeySet` for the pipeline and executors.

    Holds only the compressed :class:`~repro.io.SeededKeyMaterial` until
    an execution path touches a component:

    * ``.brk`` expands every blind-rotate entry on first access (blind
      rotation walks all ``n_t`` of them) and keeps the per-entry mask
      seeds attached, so the process-pool publisher still ships only
      seeds + bodies;
    * ``.auto_keys.key_for(t)`` expands one automorphism key per
      exponent on demand — a workload that never repacks never pays for
      them;
    * :meth:`drop_expanded` is the second eviction tier: it releases the
      expanded ciphertexts *and* every lifted eval-domain tensor the
      key registry derived from them, returning the entry to seed+``b``
      residency instead of evicting the user outright.

    ``resident_bytes()`` prices the compressed material plus whatever is
    currently expanded (including registry-held derived tensors), so the
    service's byte-accounted LRU sees the true footprint in every state.
    """

    def __init__(self, material: SeededKeyMaterial):
        self.material = material
        basis, gadget = _material_params(material)
        self.raised_basis = basis
        self.gadget = gadget
        self.key_seed = material.meta.get("key_seed")
        self._brk: Optional[BlindRotateKey] = None
        self._brk_bytes = 0
        self._auto_bytes: Dict[int, int] = {}
        self.auto_keys = AutomorphismKeySet(
            keys=_LazyAutoKeyDict(self),  # type: ignore[arg-type]
            mask_seeds={int(t): int(s) for t, s in zip(
                material.meta["auto_exponents"],  # type: ignore[arg-type]
                material.meta["auto_mask_seeds"])})  # type: ignore[arg-type]
        self.luts = LutRegistry(basis)
        self._lock = threading.RLock()
        #: Component expansions performed (brk counts as one per entry).
        self.expansions = 0
        #: drop_expanded() calls that actually freed bytes.
        self.demotions = 0

    # -- SwitchingKeySet surface ------------------------------------------

    @property
    def brk(self) -> BlindRotateKey:
        with self._lock:
            if self._brk is None:
                basis, gadget = self.raised_basis, self.gadget
                meta = self.material.meta
                n_t = int(meta["n_t"])  # type: ignore[arg-type]
                plus, minus = [], []
                for i in range(n_t):
                    p, m = _expand_brk_entry(self.material, basis, gadget, i)
                    plus.append(p)
                    minus.append(m)
                seeds = [(int(p), int(m)) for p, m in meta["brk_mask_seeds"]]  # type: ignore[union-attr]
                self._brk = BlindRotateKey(
                    plus=plus, minus=minus, gadget=gadget,
                    h=int(meta["h"]), mask_seeds=seeds)  # type: ignore[arg-type]
                self.expansions += n_t
                self._brk_bytes = sum(
                    rns_poly_bytes(poly) for rgsw in plus + minus
                    for comp in rgsw.rows for row in comp
                    for poly in list(row.mask) + [row.body])
            return self._brk

    def test_vector(self, n: int, q: int) -> RnsPoly:
        """Algorithm-2 LUT over the raised basis (served by the shared
        :class:`LutRegistry`, exactly as on :class:`SwitchingKeySet`)."""
        return self.luts.switching_vector(n, q)

    def resident_bytes(self) -> int:
        with self._lock:
            total = self.material.resident_bytes()
            total += self._brk_bytes + sum(self._auto_bytes.values())
            from ..keyreg import get_key_registry

            reg = get_key_registry()
            if self._brk is not None:
                total += reg.owner_bytes(self._brk)
            total += reg.owner_bytes(self.auto_keys)
            return total

    # -- streaming-specific surface ----------------------------------------

    def _expand_auto(self, t: int) -> GlweKeySwitchKey:
        with self._lock:
            key = _expand_auto_key(self.material, self.raised_basis,
                                   self.gadget, t)
            self.expansions += 1
            self._auto_bytes[t] = sum(
                rns_poly_bytes(poly) for row in key.rows
                for poly in list(row.mask) + [row.body])
            return key

    def drop_expanded(self) -> int:
        """Second eviction tier: fall back to seed+``b`` residency.

        Releases the expanded blind-rotate and automorphism ciphertexts,
        plus every derived eval-domain tensor the key registry holds for
        them (lifted blind-rotate stacks, per-exponent repack tensors).
        Returns the bytes freed; a later access re-expands bit-identical
        material from the seeds.
        """
        from ..keyreg import get_key_registry

        with self._lock:
            reg = get_key_registry()
            freed = self._brk_bytes + sum(self._auto_bytes.values())
            if self._brk is not None:
                freed += reg.drop_owner(self._brk)
            freed += reg.drop_owner(self.auto_keys)
            self._brk = None
            self._brk_bytes = 0
            self._auto_bytes.clear()
            lazy = self.auto_keys.keys
            if isinstance(lazy, _LazyAutoKeyDict):
                lazy._expanded.clear()
            if freed:
                self.demotions += 1
            return freed

    def compress(self) -> SeededKeyMaterial:
        return self.material


@dataclass(frozen=True)
class KeySizeAudit:
    """Section III-C size accounting for a parameter set."""

    rlwe_ciphertext_bytes: int
    lwe_ciphertext_bytes: int
    rgsw_key_bytes: int
    total_brk_bytes: int

    @classmethod
    def from_params(cls, params: TfheParams, log_q_total: int) -> "KeySizeAudit":
        """Audit with the paper's own accounting.

        * RLWE ct: ``2 * logQ * N / 8`` bytes (paper: ~0.44 MB).
        * LWE ct: ``(n_t + 1) * log q / 8`` bytes (paper: ~2.3 KB).
        * One brk entry: ``(h+1)d x (h+1)`` polynomials of ``N`` coeffs at
          ``log q`` bits (paper: ~3.52 MB for the pair).
        * Total: ``n_t`` entries (paper: ~1.76 GB).
        """
        n = params.n
        log_q = params.q.bit_length()
        rlwe = 2 * log_q_total * n // 8
        lwe = (params.n_t + 1) * log_q // 8
        rows = (params.glwe_mask + 1) * params.decomp_digits
        cols = params.glwe_mask + 1
        # The paper counts the *pair* {RGSW(s+), RGSW(s-)} as one key, and
        # its 3.52 MB figure implies full-Q (logQ = 216 bit) coefficients
        # for the key polynomials (the blind rotation accumulates in the
        # raised ring R_Qp).
        rgsw_pair = 2 * rows * cols * n * log_q_total // 8
        total = params.n_t * rgsw_pair
        return cls(rlwe_ciphertext_bytes=rlwe, lwe_ciphertext_bytes=lwe,
                   rgsw_key_bytes=rgsw_pair, total_brk_bytes=total)


def conventional_bootstrap_key_bytes(n: int = 1 << 16, log_q: int = 1728,
                                     num_keys: int = 25) -> int:
    """Key traffic of conventional CKKS bootstrapping (paper Section III-C):
    ~126 MB per switching key (at bootstrappable parameters), ~25 keys
    (24 rotation + 1 multiplication) -> ~3.2 GB per pass; the paper's
    "32 GB" figure counts repeated reads across the bootstrap pipeline."""
    per_key = 2 * 2 * log_q * n // 8 * 2  # dnum-digit key: ~4 ring elements at Q*P
    return num_keys * per_key
