"""RLWE security estimation against the HE-standard tables.

The paper claims 128-bit security for ``N = 2^13, logQ = 216`` (and its
conventional comparison set ``N = 2^16, logQ = 1728``).  We validate
such claims against the homomorphicencryption.org standard tables
(Albrecht et al., "Homomorphic Encryption Standard", ternary secret,
classical attacks): for each ring dimension, the largest ``logQ`` still
achieving a given security level.  Intermediate dimensions are handled
conservatively by the standard's own rule — use the bound of the next
*smaller* tabulated ``N``.

This is a table lookup, not a lattice estimator: adequate for checking
parameter sets against the standard, which is exactly how the paper (and
FAB, BTS, ARK, SHARP) justify their choices.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from .errors import ParameterError
from .params import CkksParams

#: max log2(Q) for ternary secret, classical security (HE standard tables).
#: {security_level: {log2(N): max_logQ}}
MAX_LOGQ = {
    128: {10: 27, 11: 54, 12: 109, 13: 218, 14: 438, 15: 881, 16: 1772},
    192: {10: 19, 11: 37, 12: 75, 13: 152, 14: 305, 15: 611, 16: 1228},
    256: {10: 14, 11: 29, 12: 58, 13: 118, 14: 237, 15: 476, 16: 953},
}


@dataclass(frozen=True)
class SecurityEstimate:
    """Result of checking a parameter set against the standard tables."""

    n: int
    log_q: int
    level: int              # highest standard level met (0 if none)
    margin_bits: int        # max_logQ(level) - logQ at that level

    @property
    def meets_128(self) -> bool:
        return self.level >= 128


def max_log_q(n: int, level: int = 128) -> int:
    """Largest standard-compliant ``logQ`` for ring dimension ``n``."""
    table = MAX_LOGQ.get(level)
    if table is None:
        raise ParameterError(f"no table for security level {level}")
    logn = int(math.log2(n))
    if n & (n - 1):
        raise ParameterError("ring dimension must be a power of two")
    candidates = [k for k in table if k <= logn]
    if not candidates:
        raise ParameterError(f"ring dimension {n} below tabulated range")
    return table[max(candidates)]


def estimate_security(n: int, log_q: int) -> SecurityEstimate:
    """Highest standard level a ``(N, logQ)`` pair meets."""
    best = 0
    margin = 0
    for level in sorted(MAX_LOGQ, reverse=True):
        bound = max_log_q(n, level)
        if log_q <= bound:
            best = level
            margin = bound - log_q
            break
    return SecurityEstimate(n=n, log_q=log_q, level=best, margin_bits=margin)


def check_params(params: CkksParams, level: int = 128,
                 include_specials: bool = True) -> SecurityEstimate:
    """Check a CKKS parameter set; the switching/special primes count
    toward the attack modulus (the key-switch keys live mod Q*P)."""
    log_q = params.log_q_total
    if include_specials:
        prod = 1
        for p in params.special_moduli:
            prod *= p
        log_q += prod.bit_length()
    est = estimate_security(params.n, log_q)
    if est.level < level:
        raise ParameterError(
            f"(N={params.n}, logQP={log_q}) only reaches {est.level}-bit "
            f"security; {level} requested")
    return est
