"""Tests for gadget decomposition."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.errors import ParameterError
from repro.math.gadget import GadgetVector, exact_digits
from repro.math.modular import find_ntt_primes

Q = find_ntt_primes(28, 16, 1)[0]


class TestGadgetVector:
    def test_invalid_params_rejected(self):
        with pytest.raises(ParameterError):
            GadgetVector(q=Q, base_bits=0, digits=2)
        with pytest.raises(ParameterError):
            GadgetVector(q=Q, base_bits=20, digits=3)  # 60 bits > 28

    def test_factors_descending(self):
        g = GadgetVector(q=Q, base_bits=9, digits=3)
        f = g.factors()
        assert f == sorted(f, reverse=True)
        assert all(x > 0 for x in f)

    def test_recompose_error_bound(self):
        g = GadgetVector(q=Q, base_bits=9, digits=3)
        rng = np.random.default_rng(0)
        vals = np.asarray([int(v) for v in rng.integers(0, Q, 64)], dtype=object)
        digits = g.decompose(vals)
        back = g.recompose(digits)
        half = Q // 2
        for v, b in zip(vals, back):
            diff = (int(b) - int(v)) % Q
            diff = diff - Q if diff > half else diff
            assert abs(diff) <= g.max_error(), (v, b, diff)

    def test_digits_are_balanced(self):
        g = GadgetVector(q=Q, base_bits=8, digits=3)
        rng = np.random.default_rng(1)
        vals = np.asarray([int(v) for v in rng.integers(0, Q, 128)], dtype=object)
        digits = g.decompose(vals)
        half_b = g.base // 2
        # Low digits strictly balanced; the top digit may carry one extra.
        for d in digits[1:]:
            assert all(-half_b <= int(x) <= half_b for x in d)
        assert all(-half_b - 1 <= int(x) <= half_b + 1 for x in digits[0])

    def test_full_precision_gadget_is_exact(self):
        """When digits*base_bits covers log q, recomposition is exact."""
        q = 2**20 + 7  # not prime but gadget doesn't care; bit_length = 21
        g = GadgetVector(q=q, base_bits=7, digits=3)
        vals = np.asarray([0, 1, q - 1, q // 2, 12345], dtype=object)
        back = g.recompose(g.decompose(vals))
        assert list(back) == [int(v) % q for v in vals]

    def test_digit_count_mismatch_rejected(self):
        g = GadgetVector(q=Q, base_bits=9, digits=3)
        with pytest.raises(ParameterError):
            g.recompose([np.zeros(4, dtype=object)] * 2)

    @given(st.integers(0, 2**27))
    @settings(max_examples=100)
    def test_scalar_roundtrip_property(self, v):
        g = GadgetVector(q=Q, base_bits=9, digits=3)
        vals = np.asarray([v % Q], dtype=object)
        back = int(g.recompose(g.decompose(vals))[0])
        diff = (back - (v % Q)) % Q
        diff = diff - Q if diff > Q // 2 else diff
        assert abs(diff) <= g.max_error()


class TestExactDigits:
    def test_reconstruction(self):
        vals = np.asarray([0, 1, 255, 256, 65535], dtype=object)
        digits = exact_digits(vals, 256, 2)
        recon = digits[0] + digits[1] * 256
        assert list(recon) == list(vals)

    def test_digit_range(self):
        vals = np.asarray([123456789], dtype=object)
        for d in exact_digits(vals, 1 << 10, 3):
            assert 0 <= int(d[0]) < (1 << 10)
