"""Tests for the real multiprocessing fan-out executor: bit-identity
against the in-process pipeline for every engine combination, survival of
genuine worker death (SIGKILL, nonzero exit, reply timeout), worker-side
fault realisation, accounting, and the cross-executor determinism of the
fault-injection schedule."""

import pickle
import time

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import ClusterExecutionError
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.profiling import count_ops
from repro.switching import SwitchingKeySet
from repro.switching.cluster_sim import SimulatedCluster
from repro.switching.fanout import PRIMARY, Fault, FaultInjector
from repro.switching.mp_executor import ProcessPoolFanoutExecutor
from repro.switching.pipeline import BootstrapPipeline, BootstrapTrace

PARAMS = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                         special_limbs=2)

ENGINE_COMBOS = [("vectorized", "vectorized"), ("vectorized", "reference"),
                 ("reference", "vectorized"), ("reference", "reference")]


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(501))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(502))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(503), base_bits=4,
                                   error_std=0.8)
    return ctx, sk, ev, swk


@pytest.fixture(scope="module")
def level0_ct(stack):
    ctx, _, ev, _ = stack
    z = np.random.default_rng(7).uniform(-1, 1, ctx.slots)
    return ev.encrypt(z, level=0)


def assert_bit_identical(reference, distributed):
    for ref_l, got_l in zip(reference.c0.to_coeff().limbs,
                            distributed.c0.to_coeff().limbs):
        assert ref_l.tolist() == got_l.tolist()
    for ref_l, got_l in zip(reference.c1.to_coeff().limbs,
                            distributed.c1.to_coeff().limbs):
        assert ref_l.tolist() == got_l.tolist()


def pool_bootstrap(ctx, swk, ct, trace=None, num_workers=2, repack="vectorized",
                   **pool_kwargs):
    with ProcessPoolFanoutExecutor.for_keys(ctx, swk, num_workers=num_workers,
                                            **pool_kwargs) as pool:
        pipe = BootstrapPipeline(ctx, swk, executor=pool, repack_engine=repack)
        return pipe.run(ct, trace)


class TestBitIdentity:
    @pytest.mark.parametrize("br_engine,rp_engine", ENGINE_COMBOS)
    def test_all_engine_combos_match_local(self, stack, level0_ct,
                                           br_engine, rp_engine):
        """The pool is the same computation as LocalExecutor, byte for
        byte, for every blind-rotate x repack engine combination."""
        ctx, _, _, swk = stack
        reference = BootstrapPipeline(
            ctx, swk, blind_rotate_engine=br_engine,
            repack_engine=rp_engine).run(level0_ct)
        out = pool_bootstrap(ctx, swk, level0_ct, repack=rp_engine,
                             blind_rotate_engine=br_engine)
        assert_bit_identical(reference, out)

    def test_spawn_start_method(self, stack, level0_ct):
        """Workers located by import (no fork inheritance) rebuild the
        key material purely from the shared-memory manifest."""
        ctx, _, _, swk = stack
        reference = BootstrapPipeline(ctx, swk).run(level0_ct)
        out = pool_bootstrap(ctx, swk, level0_ct, start_method="spawn")
        assert_bit_identical(reference, out)

    def test_single_worker_pool(self, stack, level0_ct):
        ctx, _, _, swk = stack
        reference = BootstrapPipeline(ctx, swk).run(level0_ct)
        out = pool_bootstrap(ctx, swk, level0_ct, num_workers=1)
        assert_bit_identical(reference, out)


class TestWorkerDeath:
    def test_sigkill_mid_batch_recovers_bit_identically(self, stack,
                                                        level0_ct):
        """A worker SIGKILLed after part of its batch is detected,
        respawned, and its whole slice re-dispatched — output unchanged."""
        ctx, _, _, swk = stack
        reference = BootstrapPipeline(ctx, swk).run(level0_ct)
        trace = BootstrapTrace()
        out = pool_bootstrap(
            ctx, swk, level0_ct, trace,
            fault_injector=FaultInjector([Fault.kill_worker(1, after=2)]))
        assert_bit_identical(reference, out)
        assert trace.failed_nodes == [1]
        assert trace.fanout_retries == 1
        assert trace.worker_respawns == 1
        assert any("signal 9" in note for note in trace.notes)

    def test_nonzero_exit_recovers(self, stack, level0_ct):
        ctx, _, _, swk = stack
        reference = BootstrapPipeline(ctx, swk).run(level0_ct)
        trace = BootstrapTrace()
        out = pool_bootstrap(
            ctx, swk, level0_ct, trace,
            fault_injector=FaultInjector(
                [Fault.kill_worker(0, after=0, exit_code=3)]))
        assert_bit_identical(reference, out)
        assert any("exitcode=3" in note for note in trace.notes)

    def test_reply_timeout_recovers(self, stack, level0_ct):
        """A straggler beyond reply_timeout is presumed dead: killed,
        respawned, slice re-dispatched."""
        ctx, _, _, swk = stack
        reference = BootstrapPipeline(ctx, swk).run(level0_ct)
        trace = BootstrapTrace()
        out = pool_bootstrap(
            ctx, swk, level0_ct, trace,
            fault_injector=FaultInjector([Fault.straggler(0, 30.0)]),
            reply_timeout=1.0)
        assert_bit_identical(reference, out)
        assert trace.failed_nodes == [0]
        assert any("timed out" in note for note in trace.notes)

    def test_both_workers_killed_recovers_via_respawn(self, stack, level0_ct):
        ctx, _, _, swk = stack
        reference = BootstrapPipeline(ctx, swk).run(level0_ct)
        trace = BootstrapTrace()
        out = pool_bootstrap(
            ctx, swk, level0_ct, trace,
            fault_injector=FaultInjector([Fault.kill_worker(0, after=1),
                                          Fault.kill_worker(1, after=0)]))
        assert_bit_identical(reference, out)
        assert sorted(trace.failed_nodes) == [0, 1]
        assert trace.worker_respawns == 2

    def test_unrecoverable_when_respawn_budget_zero(self, stack, level0_ct):
        """Persistent kill faults with no respawn budget exhaust the pool:
        a typed ClusterExecutionError, not a hang or garbage."""
        ctx, _, _, swk = stack
        inj = FaultInjector([Fault.kill_worker(0, persistent=True),
                             Fault.kill_worker(1, persistent=True)])
        with pytest.raises(ClusterExecutionError) as err:
            pool_bootstrap(ctx, swk, level0_ct, fault_injector=inj,
                           max_respawns=0)
        assert err.value.pending_slices


class TestWorkerSideFaults:
    def test_drop_and_corrupt_realised_by_worker(self, stack, level0_ct):
        """Reply mutation happens in the worker process; the primary's
        frame validation catches both and recovery restores the output."""
        ctx, _, _, swk = stack
        reference = BootstrapPipeline(ctx, swk).run(level0_ct)
        trace = BootstrapTrace()
        out = pool_bootstrap(
            ctx, swk, level0_ct, trace,
            fault_injector=FaultInjector([Fault.drop_reply(0, index=1),
                                          Fault.corrupt_reply(1, index=0)]))
        assert_bit_identical(reference, out)
        assert trace.fanout_retries == 2
        # Drops and corruptions are wire faults, not worker deaths.
        assert trace.failed_nodes == []
        assert trace.worker_respawns == 0

    def test_short_straggle_just_slows_the_reply(self, stack, level0_ct):
        ctx, _, _, swk = stack
        reference = BootstrapPipeline(ctx, swk).run(level0_ct)
        trace = BootstrapTrace()
        out = pool_bootstrap(
            ctx, swk, level0_ct, trace,
            fault_injector=FaultInjector([Fault.straggler(1, 0.2)]),
            reply_timeout=30.0)
        assert_bit_identical(reference, out)
        assert trace.fanout_retries == 0
        assert trace.node_seconds[1] >= 0.2


class TestConcurrentDispatch:
    """Every slice must be in flight before any reply is awaited.  Two
    equal worker-side sleeps then overlap, so the faulted run costs ~one
    sleep over the fault-free run; serialized dispatch (send, block for
    the reply, send the next slice) necessarily costs both sleeps.
    Sleep overlap needs no spare cores, so this holds on 1 CPU too."""

    def test_straggler_sleeps_overlap(self, stack, level0_ct):
        ctx, _, _, swk = stack
        delay = 0.8
        t0 = time.perf_counter()
        pool_bootstrap(ctx, swk, level0_ct)
        base = time.perf_counter() - t0
        t0 = time.perf_counter()
        pool_bootstrap(
            ctx, swk, level0_ct,
            fault_injector=FaultInjector([Fault.straggler(0, delay),
                                          Fault.straggler(1, delay)]))
        slowed = time.perf_counter() - t0
        assert slowed - base < 2 * delay - 0.4, (
            f"sleeps did not overlap: faulted run {slowed:.3f}s vs "
            f"baseline {base:.3f}s — dispatch is serialized")


class TestAccounting:
    def test_trace_and_comm_accounting(self, stack, level0_ct):
        ctx, _, _, swk = stack
        trace = BootstrapTrace()
        with ProcessPoolFanoutExecutor.for_keys(ctx, swk,
                                                num_workers=2) as pool:
            BootstrapPipeline(ctx, swk, executor=pool).run(level0_ct, trace)
            # Per-worker wall-clock for both workers, pool metadata on
            # the trace, and framed traffic on every primary<->worker link.
            assert set(trace.node_seconds) == {0, 1}
            assert all(s > 0 for s in trace.node_seconds.values())
            assert trace.pool_spinup_seconds == pool.spinup_seconds > 0
            assert trace.shared_key_bytes == pool.shared_key_bytes > 0
            assert pool.shared_key_bytes == pool.manifest.total_bytes
            for wid in (0, 1):
                assert pool.comm.link_bytes(PRIMARY, wid) > 0
                assert pool.comm.link_bytes(wid, PRIMARY) > 0
            assert pool.comm.total_retry_bytes() == 0
            util = pool.utilisation()
            assert sum(util.values()) == ctx.n

    def test_opstats_pool_counters(self, stack, level0_ct):
        ctx, _, _, swk = stack
        with count_ops() as stats:
            pool_bootstrap(
                ctx, swk, level0_ct,
                fault_injector=FaultInjector([Fault.kill_worker(1)]))
        assert stats.fanout_pool_spinups == 1
        assert stats.fanout_pool_spinup_s > 0
        assert stats.fanout_shared_key_bytes > 0
        assert stats.fanout_worker_respawns == 1
        assert stats.fanout_retries == 1

    def test_retry_traffic_accounted_separately(self, stack, level0_ct):
        ctx, _, _, swk = stack
        with ProcessPoolFanoutExecutor.for_keys(
                ctx, swk, num_workers=2,
                fault_injector=FaultInjector([Fault.drop_reply(0)])) as pool:
            BootstrapPipeline(ctx, swk, executor=pool).run(level0_ct)
            assert pool.comm.total_retry_bytes() > 0
            assert pool.comm.total_retry_bytes() < pool.comm.total_bytes()


class TestLifecycle:
    def test_closed_pool_refuses_work(self, stack, level0_ct):
        ctx, _, _, swk = stack
        pool = ProcessPoolFanoutExecutor.for_keys(ctx, swk, num_workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ClusterExecutionError, match="closed"):
            BootstrapPipeline(ctx, swk, executor=pool).run(level0_ct)

    def test_context_manager_reports_closed(self, stack):
        """``closed`` tracks the context-manager lifecycle, so cache
        owners (the service's LRU key cache) can observe executor state."""
        ctx, _, _, swk = stack
        with ProcessPoolFanoutExecutor.for_keys(ctx, swk,
                                                num_workers=1) as pool:
            assert not pool.closed
        assert pool.closed
        pool.close()  # still idempotent after __exit__
        assert pool.closed

    def test_pool_reusable_across_bootstraps(self, stack, level0_ct):
        """The pool is persistent: spin-up is paid once, both runs are
        bit-identical to the local path."""
        ctx, _, _, swk = stack
        reference = BootstrapPipeline(ctx, swk).run(level0_ct)
        with ProcessPoolFanoutExecutor.for_keys(ctx, swk,
                                                num_workers=2) as pool:
            pipe = BootstrapPipeline(ctx, swk, executor=pool)
            assert_bit_identical(reference, pipe.run(level0_ct))
            assert_bit_identical(reference, pipe.run(level0_ct))


class TestInjectorDeterminism:
    """Satellite: the injector is picklable and seed-deterministic, so
    one schedule drives both the simulated cluster and the real pool."""

    def test_fault_and_injector_pickle_roundtrip(self):
        inj = FaultInjector([Fault.kill_worker(1, after=2, exit_code=5),
                             Fault.straggler(0, 0.25, persistent=True)])
        clone = pickle.loads(pickle.dumps(inj))
        assert clone == inj
        assert clone.faults[0].exit_code == 5
        assert clone.faults[1].persistent

    def test_seeded_schedules_are_deterministic(self):
        a = FaultInjector.seeded(42, node_ids=[0, 1, 2], count=4)
        b = FaultInjector.seeded(42, node_ids=[0, 1, 2], count=4)
        assert a == b
        assert a != FaultInjector.seeded(43, node_ids=[0, 1, 2], count=4)
        assert pickle.loads(pickle.dumps(a)) == b

    def test_same_schedule_drives_both_executors(self, stack, level0_ct):
        """An identically-seeded schedule recovers bit-identically on the
        simulated cluster and on the worker pool (crash == kill_worker)."""
        ctx, _, _, swk = stack
        reference = BootstrapPipeline(ctx, swk).run(level0_ct)
        kinds = ("crash", "drop_reply", "corrupt_reply")
        sim_trace, pool_trace = BootstrapTrace(), BootstrapTrace()
        sim = SimulatedCluster(
            ctx, swk, num_nodes=2,
            fault_injector=FaultInjector.seeded(11, [0, 1], kinds=kinds))
        sim_out = sim.bootstrap(level0_ct, sim_trace)
        pool_out = pool_bootstrap(
            ctx, swk, level0_ct, pool_trace,
            fault_injector=FaultInjector.seeded(11, [0, 1], kinds=kinds))
        assert_bit_identical(reference, sim_out)
        assert_bit_identical(reference, pool_out)
        assert sim_trace.fanout_retries == pool_trace.fanout_retries


class TestSeededKeyStreaming:
    """ARK-style seeded publish: the pool ships seeds + b-halves and the
    workers replay the mask streams locally."""

    @pytest.fixture(scope="class")
    def seeded_swk(self, stack):
        ctx, sk, _, _ = stack
        return SwitchingKeySet.generate_seeded(ctx, sk, key_seed=9901,
                                               base_bits=4, error_std=0.8)

    def test_seeded_pool_bit_identical(self, stack, level0_ct, seeded_swk):
        ctx, _, _, _ = stack
        reference = BootstrapPipeline(ctx, seeded_swk).run(level0_ct)
        out = pool_bootstrap(ctx, seeded_swk, level0_ct)
        assert_bit_identical(reference, out)

    def test_seeded_publish_halves_shared_bytes(self, stack, seeded_swk):
        ctx, _, _, swk = stack
        with ProcessPoolFanoutExecutor.for_keys(ctx, swk,
                                                num_workers=1) as eager_pool:
            eager_bytes = eager_pool.shared_key_bytes
        with ProcessPoolFanoutExecutor.for_keys(ctx, seeded_swk,
                                                num_workers=1) as pool:
            seeded_bytes = pool.shared_key_bytes
        assert eager_bytes >= 1.9 * seeded_bytes

    def test_seeded_pool_spawn_start_method(self, stack, level0_ct,
                                            seeded_swk):
        """Workers with no fork inheritance expand keys purely from the
        manifest's seeds and bodies."""
        ctx, _, _, _ = stack
        reference = BootstrapPipeline(ctx, seeded_swk).run(level0_ct)
        out = pool_bootstrap(ctx, seeded_swk, level0_ct,
                             start_method="spawn")
        assert_bit_identical(reference, out)
