"""Tests for the op profiler and the functional-vs-model cross-check."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.math.modular import find_ntt_primes
from repro.math.ntt import NttEngine
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.profiling import OpStats, count_ops, estimate_hardware_seconds
from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet


class TestCounters:
    def test_single_ntt_counted(self):
        n = 32
        q = find_ntt_primes(24, n, 1)[0]
        eng = NttEngine(n, q)
        a = eng.mod.asarray(np.arange(n))
        with count_ops() as stats:
            eng.forward(a)
        assert stats.ntt_calls == 1
        assert stats.ntt_points == n
        assert stats.butterfly_mults == (n // 2) * 5  # log2(32) = 5

    def test_batched_ntt_counted_per_row(self):
        n = 16
        q = find_ntt_primes(24, n, 1)[0]
        eng = NttEngine(n, q)
        a = eng.mod.asarray(np.arange(3 * n).reshape(3, n) % q)
        with count_ops() as stats:
            eng.forward(a)
        assert stats.ntt_calls == 3

    def test_disabled_outside_context(self):
        n = 16
        q = find_ntt_primes(24, n, 1)[0]
        eng = NttEngine(n, q)
        a = eng.mod.asarray(np.arange(n))
        with count_ops() as stats:
            pass
        eng.forward(a)  # after the context: not recorded
        assert stats.ntt_calls == 0

    def test_nested_contexts_restore(self):
        n = 16
        q = find_ntt_primes(24, n, 1)[0]
        eng = NttEngine(n, q)
        a = eng.mod.asarray(np.arange(n))
        with count_ops() as outer:
            with count_ops() as inner:
                eng.forward(a)
            eng.forward(a)
        assert inner.ntt_calls == 1
        assert outer.ntt_calls == 1


class TestFunctionalVsModel:
    def test_bootstrap_op_counts_measured(self):
        """Profile a real toy bootstrap and sanity-check the counts the
        performance model assumes: NTT work dominated by the blind-rotate
        external products (N rotations x digits x limbs)."""
        params = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                                 special_limbs=2)
        ctx = CkksContext(params.ckks, dnum=2)
        gen = CkksKeyGenerator(ctx, Sampler(901))
        sk = gen.secret_key()
        ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(902))
        swk = SwitchingKeySet.generate(ctx, sk, Sampler(903), base_bits=8,
                                       error_std=0.8)
        boot = SchemeSwitchBootstrapper(ctx, swk)
        ct = ev.encrypt(0.3, level=0)
        with count_ops() as stats:
            boot.bootstrap(ct)
        # Lower bound: N blind rotates x N iterations x digit transforms,
        # over the 4-limb raised basis.
        digits = swk.gadget.digits
        min_ntts = ctx.n * ctx.n * digits  # very conservative
        assert stats.ntt_calls > min_ntts / 4
        assert stats.pointwise_mults > 0
        # The compute-bound hardware estimate for this toy run is far
        # below a millisecond — the array is built for N=2^13 rings.
        assert estimate_hardware_seconds(stats) < 1e-2

    def test_hardware_estimate_scales_with_work(self):
        a = OpStats()
        a.record_ntt(1 << 13, 100)
        b = OpStats()
        b.record_ntt(1 << 13, 200)
        assert estimate_hardware_seconds(b) == pytest.approx(
            2 * estimate_hardware_seconds(a))
