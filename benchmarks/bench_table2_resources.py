"""Table II: FPGA resource utilisation of HEAP on the Alveo U280."""

from conftest import emit

from repro.analysis import format_table, table2_resources
from repro.hardware import ResourceModel
from repro.params import make_heap_params


def bench_table2(benchmark):
    headers, rows = benchmark(table2_resources)
    emit("table2_resources", "Table II: FPGA resource utilization\n" +
         format_table(headers, rows))
    # Shape assertions: the paper's utilisation percentages.
    by = {r["Resource"]: r for r in rows}
    assert abs(by["LUTs"]["% Utilization"] - 77.61) < 0.1
    assert abs(by["URAM blocks"]["% Utilization"] - 99.80) < 0.1


def bench_onchip_ciphertext_capacity(benchmark):
    params = make_heap_params().ckks
    caps = benchmark(ResourceModel().onchip_rlwe_capacity, params)
    emit("table2_capacity",
         "On-chip RLWE capacity (paper Section IV-C: 80 URAM / 20 BRAM)\n"
         f"  URAM: {caps['uram_ct_capacity']} ciphertexts "
         f"({caps['uram_blocks_per_ct']} blocks each)\n"
         f"  BRAM: {caps['bram_ct_capacity']} ciphertexts "
         f"({caps['bram_blocks_per_ct']} blocks each)")
    assert caps["uram_ct_capacity"] == 80
    assert caps["bram_ct_capacity"] == 20
