"""Unit and property tests for repro.math.modular."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.math.modular import (
    ModulusEngine,
    barrett_precompute,
    crt_compose,
    crt_decompose,
    find_ntt_primes,
    is_prime,
    primitive_root,
    root_of_unity,
)


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 97, 7681, 12289):
            assert is_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 91, 561, 1105, 7680):
            assert not is_prime(c)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes that fool weak tests.
        for c in (561, 41041, 825265, 321197185):
            assert not is_prime(c)

    def test_large_ntt_prime(self):
        # A known 36-bit NTT-friendly prime for N=2^13.
        primes = find_ntt_primes(36, 1 << 13, 1)
        assert is_prime(primes[0])


class TestNttPrimes:
    def test_congruence_condition(self):
        n = 256
        for p in find_ntt_primes(28, n, 5):
            assert p % (2 * n) == 1

    def test_primes_distinct_and_descending(self):
        primes = find_ntt_primes(30, 128, 6)
        assert len(set(primes)) == 6
        assert primes == sorted(primes, reverse=True)

    def test_skip_produces_disjoint_sets(self):
        a = find_ntt_primes(28, 64, 3)
        b = find_ntt_primes(28, 64, 3, skip=3)
        assert not set(a) & set(b)

    def test_bit_length(self):
        for p in find_ntt_primes(36, 1 << 13, 3):
            assert p.bit_length() == 36


class TestRoots:
    def test_primitive_root_order(self):
        q = find_ntt_primes(20, 64, 1)[0]
        g = primitive_root(q)
        # g^((q-1)/f) != 1 for every prime factor f was checked internally;
        # sanity: g^(q-1) == 1 and g^((q-1)/2) == q-1.
        assert pow(g, q - 1, q) == 1
        assert pow(g, (q - 1) // 2, q) == q - 1

    def test_root_of_unity_has_exact_order(self):
        n = 128
        q = find_ntt_primes(24, n, 1)[0]
        w = root_of_unity(q, 2 * n)
        assert pow(w, 2 * n, q) == 1
        assert pow(w, n, q) == q - 1  # primitive 2n-th root: w^n = -1


class TestBarrett:
    @given(st.integers(min_value=0))
    @settings(max_examples=200)
    def test_barrett_matches_mod(self, seed):
        q = 2**36 - 2**20 + 1 if is_prime(2**36 - 2**20 + 1) else find_ntt_primes(36, 8, 1)[0]
        bc = barrett_precompute(q)
        x = seed % (q * q)
        assert bc.reduce(x) == x % q

    def test_barrett_edge_cases(self):
        q = find_ntt_primes(30, 8, 1)[0]
        bc = barrett_precompute(q)
        for x in (0, 1, q - 1, q, q + 1, q * q - 1):
            assert bc.reduce(x) == x % q


@pytest.fixture(params=[find_ntt_primes(28, 64, 1)[0], find_ntt_primes(36, 64, 1)[0]],
                ids=["fast-28bit", "wide-36bit"])
def engine(request):
    return ModulusEngine(request.param)


class TestModulusEngine:
    def test_path_selection(self):
        assert ModulusEngine(find_ntt_primes(28, 64, 1)[0]).fast
        assert not ModulusEngine(find_ntt_primes(36, 64, 1)[0]).fast

    def test_add_sub_roundtrip(self, engine):
        rng = np.random.default_rng(0)
        a = engine.asarray(rng.integers(0, 2**27, 100))
        b = engine.asarray(rng.integers(0, 2**27, 100))
        s = engine.add(a, b)
        assert np.array_equal(engine.sub(s, b), a)

    def test_mul_matches_python(self, engine):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2**27, 50)
        b = rng.integers(0, 2**27, 50)
        got = engine.mul(engine.asarray(a), engine.asarray(b))
        want = [(int(x) * int(y)) % engine.q for x, y in zip(a, b)]
        assert [int(v) for v in got] == want

    def test_neg(self, engine):
        a = engine.asarray([0, 1, 2, engine.q - 1])
        n = engine.neg(a)
        assert int(n[0]) == 0
        assert int(n[1]) == engine.q - 1
        assert int(n[3]) == 1

    def test_mac(self, engine):
        acc = engine.asarray([5, 6])
        a = engine.asarray([2, 3])
        got = engine.mac(acc, a, 7)
        assert [int(v) for v in got] == [(5 + 14) % engine.q, (6 + 21) % engine.q]

    def test_inverse(self, engine):
        for a in (1, 2, 12345, engine.q - 1):
            assert a * engine.inv(a) % engine.q == 1

    def test_inverse_of_zero_raises(self, engine):
        with pytest.raises(ZeroDivisionError):
            engine.inv(0)

    def test_centered_range(self, engine):
        a = engine.asarray(np.arange(0, 64))
        c = engine.centered(a)
        assert all(-engine.q // 2 <= int(v) <= engine.q // 2 for v in c)

    def test_centered_roundtrip(self, engine):
        vals = [0, 1, engine.q - 1, engine.q // 2, engine.q // 2 + 1]
        a = engine.asarray(vals)
        c = engine.centered(a)
        back = engine.reduce(np.asarray(c, dtype=object))
        assert [int(v) for v in back] == vals


class TestCrt:
    @given(st.lists(st.integers(min_value=0, max_value=10**12), min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_compose_decompose_roundtrip(self, values):
        moduli = find_ntt_primes(20, 8, 4)
        big_q = 1
        for q in moduli:
            big_q *= q
        vals = np.asarray([v % big_q for v in values], dtype=object)
        residues = crt_decompose(vals, moduli)
        back = crt_compose(residues, moduli)
        assert list(back) == list(vals)

    def test_compose_single_modulus(self):
        moduli = [97]
        residues = crt_decompose(np.asarray([5, 96], dtype=object), moduli)
        assert list(crt_compose(residues, moduli)) == [5, 96]


class TestLazyReduction:
    """The batched external-product MAC helpers: one reduction per drain."""

    @pytest.mark.parametrize("q", [97, 1073741441, 68719474049])
    def test_lazy_mac_sum_matches_naive(self, q):
        # lazy-bound: 5 contraction terms, far below the 2^32-term capacity.
        eng = ModulusEngine(q)
        rng = np.random.default_rng(0)
        a = eng.asarray(rng.integers(0, min(q, 1 << 62), size=(3, 5, 4), dtype=np.int64))
        b = eng.asarray(rng.integers(0, min(q, 1 << 62), size=(3, 5, 4), dtype=np.int64))
        got = eng.lazy_mac_sum(a, b, axis=1)
        want = np.zeros((3, 4), dtype=object)
        for i in range(3):
            for r in range(5):
                for j in range(4):
                    want[i, j] = (want[i, j] + int(a[i, r, j]) * int(b[i, r, j])) % q
        assert np.array_equal(got.astype(object), want)

    def test_lazy_mac_sum_broadcasts(self):
        # lazy-bound: 3 contraction terms, far below the 2^32-term capacity.
        q = 97
        eng = ModulusEngine(q)
        rng = np.random.default_rng(1)
        digits = eng.asarray(rng.integers(0, q, size=(2, 3, 1, 4)))
        key = eng.asarray(rng.integers(0, q, size=(3, 2, 4)))
        got = eng.lazy_mac_sum(digits, key, axis=1)
        assert got.shape == (2, 2, 4)
        for bi in range(2):
            for c in range(2):
                for j in range(4):
                    want = sum(int(digits[bi, r, 0, j]) * int(key[r, c, j])
                               for r in range(3)) % q
                    assert int(got[bi, c, j]) == want

    def test_lazy_sum_matches_mod_sum(self):
        # lazy-bound: 64 summands of residues < 2^31 fit a uint64 lane.
        eng = ModulusEngine(1073741441)
        rng = np.random.default_rng(2)
        terms = eng.asarray(rng.integers(0, eng.q, size=(64, 8), dtype=np.int64))
        got = eng.lazy_sum(terms, axis=0)
        want = np.array([sum(int(terms[r, j]) for r in range(64)) % eng.q
                         for j in range(8)], dtype=np.int64)
        assert np.array_equal(got, want)

    def test_fast_path_no_overflow_at_31_bit_bound(self):
        """Accumulating many near-2^31 residues must stay exact in int64."""
        # lazy-bound: 4096 * (q-1)^2 < 2^74 is held as reduced products, so
        # the deferred sum of 4096 residues stays within the uint64 lane.
        eng = ModulusEngine(1073741441)
        big = eng.asarray(np.full((4096, 2), eng.q - 1, dtype=np.int64))
        got = eng.lazy_mac_sum(big, big, axis=0)
        want = (4096 * pow(eng.q - 1, 2, eng.q)) % eng.q
        assert np.array_equal(got, np.full(2, want, dtype=np.int64))
