"""GLWE ciphertexts over an (optionally multi-limb) polynomial ring.

GLWE generalises LWE and RLWE (paper footnote 1): a ciphertext is
``(a_1 .. a_h, b)`` with ``h`` mask polynomials, decrypting through the
phase ``b + sum_i a_i * s_i``.  The paper uses ``h = 1`` (plain RLWE) for
the accumulator; we keep ``h`` generic since the key-size audit of
Section III-C scales with it.

Polynomials are :class:`~repro.math.rns.RnsPoly` so the same class covers
the single-limb standalone-TFHE case and the ``R_{Qp}`` accumulator of
the scheme-switching bootstrap (Algorithm 2 works modulo the full
``Q * p``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ParameterError
from ..math.rns import RnsBasis, RnsPoly
from ..math.sampling import Sampler


@dataclass
class GlweSecretKey:
    """``h`` ternary secret polynomials, stored as exact integer vectors."""

    coeffs: List[np.ndarray]  # h arrays of length n, entries in {-1,0,1}
    n: int

    @property
    def h(self) -> int:
        return len(self.coeffs)

    @classmethod
    def generate(cls, n: int, h: int, sampler: Sampler) -> "GlweSecretKey":
        return cls(coeffs=[sampler.ternary(n).astype(object) for _ in range(h)], n=n)

    def on_basis(self, basis: RnsBasis) -> List[RnsPoly]:
        return [RnsPoly.from_int_coeffs(self.n, basis, c).to_eval() for c in self.coeffs]

    def __repr__(self) -> str:
        """Redacted: structure only, never the coefficient payload."""
        return f"GlweSecretKey(h={self.h}, n={self.n}, coeffs=<redacted>)"


@dataclass
class GlweCiphertext:
    """``(mask[0..h-1], body)`` with phase ``body + sum mask_i * s_i``."""

    mask: List[RnsPoly]
    body: RnsPoly

    @property
    def h(self) -> int:
        return len(self.mask)

    @property
    def n(self) -> int:
        return self.body.n

    @property
    def basis(self) -> RnsBasis:
        return self.body.basis

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other: "GlweCiphertext") -> "GlweCiphertext":
        self._check(other)
        return GlweCiphertext(
            mask=[x + y for x, y in zip(self.mask, other.mask)],
            body=self.body + other.body,
        )

    def __sub__(self, other: "GlweCiphertext") -> "GlweCiphertext":
        self._check(other)
        return GlweCiphertext(
            mask=[x - y for x, y in zip(self.mask, other.mask)],
            body=self.body - other.body,
        )

    def __neg__(self) -> "GlweCiphertext":
        return GlweCiphertext(mask=[-x for x in self.mask], body=-self.body)

    def mul_poly(self, p: RnsPoly) -> "GlweCiphertext":
        """Multiply every component by a (public) ring element."""
        return GlweCiphertext(mask=[x * p for x in self.mask], body=self.body * p)

    def mul_scalar(self, k: int) -> "GlweCiphertext":
        return GlweCiphertext(mask=[x * k for x in self.mask], body=self.body * k)

    def negacyclic_shift(self, k: int) -> "GlweCiphertext":
        """Multiply by the monomial ``X^k`` (the paper's rotation unit)."""
        return GlweCiphertext(
            mask=[_shift_rns(x, k) for x in self.mask],
            body=_shift_rns(self.body, k),
        )

    def automorphism(self, t: int) -> "GlweCiphertext":
        """Component-wise ``X -> X^t`` (changes the effective key!)."""
        return GlweCiphertext(
            mask=[x.automorphism(t) for x in self.mask],
            body=self.body.automorphism(t),
        )

    def to_eval(self) -> "GlweCiphertext":
        return GlweCiphertext([x.to_eval() for x in self.mask], self.body.to_eval())

    def to_coeff(self) -> "GlweCiphertext":
        return GlweCiphertext([x.to_coeff() for x in self.mask], self.body.to_coeff())

    def copy(self) -> "GlweCiphertext":
        return GlweCiphertext([x.copy() for x in self.mask], self.body.copy())

    def _check(self, other: "GlweCiphertext") -> None:
        if self.h != other.h or self.basis.moduli != other.basis.moduli:
            raise ParameterError("GLWE ciphertext mismatch")

    @classmethod
    def trivial(cls, message: RnsPoly, h: int) -> "GlweCiphertext":
        """Noiseless public ciphertext ``(0, .., 0, m)`` — e.g. the initial
        accumulator ``ACC = (0, f * X^b)`` of Algorithm 1."""
        return cls(mask=[RnsPoly.zero(message.n, message.basis, message.domain)
                         for _ in range(h)],
                   body=message.copy())


def glwe_encrypt(message: RnsPoly, sk: GlweSecretKey, sampler: Sampler,
                 error_std: Optional[float] = None) -> GlweCiphertext:
    """Encrypt a ring element: ``body = m + e - sum a_i s_i``."""
    basis = message.basis
    n = message.n
    s_polys = sk.on_basis(basis)
    mask = []
    acc = RnsPoly.zero(n, basis, "eval")
    for s in s_polys:
        limbs = [e.asarray(sampler.uniform(n, q)) for e, q in zip(basis.engines, basis.moduli)]
        a = RnsPoly(n, basis, limbs, "eval")
        mask.append(a)
        acc = acc + a * s
    e_poly = RnsPoly.from_int_coeffs(n, basis, sampler.gaussian(n, error_std).astype(object))
    body = message.to_eval() + e_poly.to_eval() - acc
    return GlweCiphertext(mask=mask, body=body)


def draw_uniform_masks(mask_rng: Sampler, h: int, n: int,
                       basis: RnsBasis) -> List[RnsPoly]:
    """Draw the ``h`` uniform mask polynomials of one GLWE row.

    This is THE canonical draw order of the seeded key schedule: mask
    polynomials in component order, limbs in basis order, every limb one
    ``uniform(n, q)`` call, interpreted directly as evaluation-domain
    residues.  :func:`glwe_encrypt_seeded` consumes it at keygen and every
    expansion path (eager re-expansion, streaming key cache misses, the
    process-pool workers) replays it bit-identically from the stored seed.
    """
    masks = []
    for _ in range(h):
        limbs = [e.asarray(mask_rng.uniform(n, q))
                 for e, q in zip(basis.engines, basis.moduli)]
        masks.append(RnsPoly(n, basis, limbs, "eval"))
    return masks


def glwe_encrypt_seeded(message: RnsPoly, sk: GlweSecretKey, mask_rng: Sampler,
                        noise: Sampler,
                        error_std: Optional[float] = None) -> GlweCiphertext:
    """Encrypt with masks from a replayable seeded stream.

    Identical to :func:`glwe_encrypt` except the uniform ``a``-halves come
    from ``mask_rng`` (a :func:`~repro.math.sampling.mask_stream`) while
    the Gaussian error comes from the separate ``noise`` sampler.  Only
    the body and the mask seed need to be stored — the masks are
    recomputed on demand by replaying the stream.
    """
    basis = message.basis
    n = message.n
    s_polys = sk.on_basis(basis)
    mask = draw_uniform_masks(mask_rng, sk.h, n, basis)
    acc = RnsPoly.zero(n, basis, "eval")
    for a, s in zip(mask, s_polys):
        acc = acc + a * s
    e_poly = RnsPoly.from_int_coeffs(n, basis, noise.gaussian(n, error_std).astype(object))
    body = message.to_eval() + e_poly.to_eval() - acc
    return GlweCiphertext(mask=mask, body=body)


def glwe_phase(ct: GlweCiphertext, sk: GlweSecretKey) -> RnsPoly:
    """``body + sum mask_i * s_i`` = message + noise."""
    s_polys = sk.on_basis(ct.basis)
    acc = ct.body.to_eval()
    for a, s in zip(ct.mask, s_polys):
        acc = acc + a * s
    return acc


def glwe_decrypt_coeffs(ct: GlweCiphertext, sk: GlweSecretKey) -> np.ndarray:
    """Centred big-int coefficients of the phase."""
    return glwe_phase(ct, sk).to_centered_int_coeffs()


def _shift_rns(poly: RnsPoly, k: int) -> RnsPoly:
    """Negacyclic shift of an RnsPoly by ``X^k`` limb-wise."""
    src = poly.to_coeff()
    n = src.n
    k = k % (2 * n)
    sign_flip = k >= n
    k = k % n
    limbs = []
    for e, limb in zip(src.basis.engines, src.limbs):
        rolled = np.roll(limb, k)
        if k:
            rolled = rolled.copy()
            head = rolled[:k]
            rolled[:k] = np.where(head == 0, head, e.q - head)
        if sign_flip:
            rolled = np.where(rolled == 0, rolled, e.q - rolled)
        limbs.append(rolled)
    return RnsPoly(n, src.basis, limbs, "coeff")
