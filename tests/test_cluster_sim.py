"""Tests for the message-passing multi-node bootstrap simulation,
including the fault-injection / recovery layer."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import ClusterExecutionError, ParameterError
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet
from repro.switching.cluster_sim import (
    Fault,
    FaultInjector,
    SimulatedCluster,
)
from repro.switching.pipeline import BootstrapTrace

PARAMS = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                         special_limbs=2)

ENGINE_COMBOS = [("vectorized", "vectorized"), ("vectorized", "reference"),
                 ("reference", "vectorized"), ("reference", "reference")]


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(501))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(502))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(503), base_bits=4,
                                   error_std=0.8)
    return ctx, sk, ev, swk


def assert_bit_identical(reference, distributed):
    for ref_l, got_l in zip(reference.c0.to_coeff().limbs,
                            distributed.c0.to_coeff().limbs):
        assert ref_l.tolist() == got_l.tolist()
    for ref_l, got_l in zip(reference.c1.to_coeff().limbs,
                            distributed.c1.to_coeff().limbs):
        assert ref_l.tolist() == got_l.tolist()


class TestDistributedBootstrap:
    def test_bit_identical_to_single_node(self, stack):
        """The hardware-agnostic claim: the distributed execution is the
        same computation, byte for byte."""
        ctx, sk, ev, swk = stack
        z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=0)
        reference = SchemeSwitchBootstrapper(ctx, swk).bootstrap(ct)
        cluster = SimulatedCluster(ctx, swk, num_nodes=4)
        distributed = cluster.bootstrap(ct)
        assert_bit_identical(reference, distributed)

    @pytest.mark.parametrize("br_engine,rp_engine", ENGINE_COMBOS)
    def test_bit_identical_all_engine_combos(self, stack, br_engine,
                                             rp_engine):
        """Every blind-rotate x repack engine combination flows through
        the one shared pipeline — cluster output must match the
        single-node bootstrapper on the same engines bit for bit, on a
        node count that does not divide N."""
        ctx, sk, ev, swk = stack
        z = np.random.default_rng(3).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=0)
        reference = SchemeSwitchBootstrapper(
            ctx, swk, blind_rotate_engine=br_engine,
            repack_engine=rp_engine).bootstrap(ct)
        cluster = SimulatedCluster(ctx, swk, num_nodes=3,
                                   blind_rotate_engine=br_engine,
                                   repack_engine=rp_engine)
        assert_bit_identical(reference, cluster.bootstrap(ct))

    def test_engines_bit_identical_to_each_other(self, stack):
        """Cross-engine: all four cluster combinations agree with each
        other (so one reference run pins them all)."""
        ctx, sk, ev, swk = stack
        ct = ev.encrypt(0.4, level=0)
        outputs = [SimulatedCluster(ctx, swk, num_nodes=2,
                                    blind_rotate_engine=br,
                                    repack_engine=rp).bootstrap(ct)
                   for br, rp in ENGINE_COMBOS]
        for other in outputs[1:]:
            assert_bit_identical(outputs[0], other)

    def test_decrypts_correctly(self, stack):
        ctx, sk, ev, swk = stack
        z = np.random.default_rng(1).uniform(-1, 1, ctx.slots)
        cluster = SimulatedCluster(ctx, swk, num_nodes=2)
        out = cluster.bootstrap(ev.encrypt(z, level=0))
        assert np.allclose(ev.decrypt(out, sk).real, z, atol=0.05)

    def test_work_distribution(self, stack):
        ctx, sk, ev, swk = stack
        cluster = SimulatedCluster(ctx, swk, num_nodes=4)
        cluster.bootstrap(ev.encrypt(0.2, level=0))
        util = cluster.utilisation()
        assert sum(util.values()) == ctx.n
        assert max(util.values()) - min(util.values()) <= 1  # balanced

    @pytest.mark.parametrize("num_nodes", [3, 5, 7])
    def test_node_counts_that_do_not_divide_n(self, stack, num_nodes):
        """Uneven contiguous slices still cover all N BlindRotates and
        stay bit-identical to the single-node run."""
        ctx, sk, ev, swk = stack
        ct = ev.encrypt(0.3, level=0)
        reference = SchemeSwitchBootstrapper(ctx, swk).bootstrap(ct)
        cluster = SimulatedCluster(ctx, swk, num_nodes=num_nodes)
        assert_bit_identical(reference, cluster.bootstrap(ct))
        util = cluster.utilisation()
        assert sum(util.values()) == ctx.n
        assert max(util.values()) - min(util.values()) <= 1

    def test_single_node_has_no_traffic(self, stack):
        ctx, sk, ev, swk = stack
        cluster = SimulatedCluster(ctx, swk, num_nodes=1)
        cluster.bootstrap(ev.encrypt(0.2, level=0))
        assert cluster.comm.total_bytes() == 0

    def test_comm_log_structure(self, stack):
        """Every secondary receives its LWE batch from the primary and
        returns one accumulator per BlindRotate."""
        ctx, sk, ev, swk = stack
        cluster = SimulatedCluster(ctx, swk, num_nodes=4)
        cluster.bootstrap(ev.encrypt(0.2, level=0))
        per_node = ctx.n // 4
        for node_id in (1, 2, 3):
            assert cluster.comm.messages[(0, node_id)] == per_node
            assert cluster.comm.messages[(node_id, 0)] == per_node
            # Results (RLWE over Qp) are much bigger than the 2N-modulus
            # LWE inputs — the paper's asymmetric traffic pattern.
            assert (cluster.comm.link_bytes(node_id, 0) >
                    10 * cluster.comm.link_bytes(0, node_id))
        # Fault-free run: no retry traffic, no retry counters.
        assert cluster.comm.total_retry_bytes() == 0

    def test_trace_reports_per_node_fanout_timing(self, stack):
        ctx, sk, ev, swk = stack
        cluster = SimulatedCluster(ctx, swk, num_nodes=4)
        trace = BootstrapTrace()
        cluster.bootstrap(ev.encrypt(0.2, level=0), trace)
        assert sorted(trace.node_seconds) == [0, 1, 2, 3]
        assert all(t >= 0.0 for t in trace.node_seconds.values())
        assert trace.fanout_retries == 0
        assert trace.fanout_redispatched_lwes == 0
        assert trace.failed_nodes == []

    def test_invalid_config(self, stack):
        ctx, sk, ev, swk = stack
        with pytest.raises(ParameterError):
            SimulatedCluster(ctx, swk, num_nodes=0)
        cluster = SimulatedCluster(ctx, swk, num_nodes=2)
        with pytest.raises(ParameterError):
            cluster.bootstrap(ev.encrypt(0.1))  # not level 0


class TestFaultRecovery:
    """Every injected-fault path recovers to a bit-identical result and
    accounts the recovery on the trace and the CommLog."""

    def _reference(self, stack, value=0.35, seed=7):
        ctx, sk, ev, swk = stack
        z = np.random.default_rng(seed).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=0)
        return ct, SchemeSwitchBootstrapper(ctx, swk).bootstrap(ct)

    def test_crash_mid_batch_recovers(self, stack):
        """Node 2 dies after one BlindRotate; its whole 5-LWE slice is
        re-sent to the least-loaded survivor (node 1, load 5 < the
        primary's 6) and the output is unchanged."""
        ctx, sk, ev, swk = stack
        ct, reference = self._reference(stack)
        injector = FaultInjector([Fault.crash(2, after=1)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=3,
                                   fault_injector=injector)
        trace = BootstrapTrace()
        out = cluster.bootstrap(ct, trace)
        assert_bit_identical(reference, out)
        assert trace.fanout_retries == 1
        assert trace.fanout_redispatched_lwes == 5  # node 2's slice of 16
        assert trace.failed_nodes == [2]
        # The re-sent slice shows up as separate retry traffic.
        assert cluster.comm.total_retry_bytes() > 0
        assert cluster.comm.total_retry_bytes() < cluster.comm.total_bytes()

    def test_primary_crash_recovers(self, stack):
        """Node 0 computes as well as coordinates; its own slice can be
        re-dispatched like any other."""
        ctx, sk, ev, swk = stack
        ct, reference = self._reference(stack, seed=8)
        injector = FaultInjector([Fault.crash(0)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=4,
                                   fault_injector=injector)
        trace = BootstrapTrace()
        assert_bit_identical(reference, cluster.bootstrap(ct, trace))
        assert trace.failed_nodes == [0]
        assert trace.fanout_retries == 1
        # The slice that used to stay on the primary now crosses a wire.
        assert cluster.comm.total_retry_bytes() > 0

    def test_corrupt_reply_detected_by_crc(self, stack):
        ctx, sk, ev, swk = stack
        ct, reference = self._reference(stack, seed=9)
        injector = FaultInjector([Fault.corrupt_reply(1, index=2)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=4,
                                   fault_injector=injector)
        trace = BootstrapTrace()
        assert_bit_identical(reference, cluster.bootstrap(ct, trace))
        assert trace.fanout_retries == 1
        # A corrupt link is transient: the node is not declared dead.
        assert trace.failed_nodes == []
        assert any("CRC" in note for note in trace.notes)

    def test_dropped_reply_detected_by_count(self, stack):
        ctx, sk, ev, swk = stack
        ct, reference = self._reference(stack, seed=10)
        injector = FaultInjector([Fault.drop_reply(3, index=0)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=4,
                                   fault_injector=injector)
        trace = BootstrapTrace()
        assert_bit_identical(reference, cluster.bootstrap(ct, trace))
        assert trace.fanout_retries == 1
        assert trace.failed_nodes == []
        assert any("short reply" in note for note in trace.notes)

    def test_straggler_below_timeout_is_tolerated(self, stack):
        ctx, sk, ev, swk = stack
        ct, reference = self._reference(stack, seed=11)
        injector = FaultInjector([Fault.straggler(1, delay_seconds=0.5)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=4,
                                   fault_injector=injector,
                                   straggler_timeout=30.0)
        trace = BootstrapTrace()
        assert_bit_identical(reference, cluster.bootstrap(ct, trace))
        assert trace.fanout_retries == 0
        # The injected delay is visible in the per-node fan-out timing.
        assert trace.node_seconds[1] >= 0.5
        assert max(trace.node_seconds, key=trace.node_seconds.get) == 1

    def test_straggler_past_timeout_is_redispatched(self, stack):
        ctx, sk, ev, swk = stack
        ct, reference = self._reference(stack, seed=12)
        injector = FaultInjector([Fault.straggler(1, delay_seconds=120.0)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=4,
                                   fault_injector=injector,
                                   straggler_timeout=1.0)
        trace = BootstrapTrace()
        assert_bit_identical(reference, cluster.bootstrap(ct, trace))
        assert trace.fanout_retries == 1
        assert trace.failed_nodes == [1]
        assert any("timed out" in note for note in trace.notes)

    def test_multiple_concurrent_faults(self, stack):
        """Two nodes fail in the same fan-out; both slices recover."""
        ctx, sk, ev, swk = stack
        ct, reference = self._reference(stack, seed=13)
        injector = FaultInjector([Fault.crash(1), Fault.crash(2, after=2)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=4,
                                   fault_injector=injector)
        trace = BootstrapTrace()
        assert_bit_identical(reference, cluster.bootstrap(ct, trace))
        assert trace.fanout_retries == 2
        assert sorted(trace.failed_nodes) == [1, 2]
        assert trace.fanout_redispatched_lwes == 2 * (ctx.n // 4)

    def test_fault_during_recovery(self, stack):
        """The recovery target can itself fail; the slice is queued again
        and lands on a third node."""
        ctx, sk, ev, swk = stack
        ct, reference = self._reference(stack, seed=14)
        # Node 2's slice fails; the first recovery target (node 0, the
        # least-loaded-tie winner) drops its reply, forcing a second hop
        # that lands on node 1.
        injector = FaultInjector([Fault.crash(2), Fault.drop_reply(0)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=4,
                                   fault_injector=injector)
        trace = BootstrapTrace()
        assert_bit_identical(reference, cluster.bootstrap(ct, trace))
        assert trace.fanout_retries == 2
        assert trace.failed_nodes == [2]  # drops are transient, not deaths

    def test_all_nodes_dead_raises_typed_error(self, stack):
        ctx, sk, ev, swk = stack
        injector = FaultInjector([Fault.crash(i, persistent=True)
                                  for i in range(3)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=3,
                                   fault_injector=injector)
        with pytest.raises(ClusterExecutionError) as excinfo:
            cluster.bootstrap(ev.encrypt(0.2, level=0))
        assert sorted(excinfo.value.failed_nodes) == [0, 1, 2]
        assert excinfo.value.pending_slices  # at least one slice unplaced

    def test_persistent_transient_fault_exhausts_retry_budget(self, stack):
        """Persistently corrupted links keep every node 'healthy' but no
        reply ever validates — the retry budget converts the livelock
        into the typed error."""
        ctx, sk, ev, swk = stack
        injector = FaultInjector([Fault.corrupt_reply(i, persistent=True)
                                  for i in range(2)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=2,
                                   fault_injector=injector, max_retries=4)
        with pytest.raises(ClusterExecutionError, match="retry budget"):
            cluster.bootstrap(stack[2].encrypt(0.2, level=0))

    @pytest.mark.parametrize("br_engine,rp_engine", ENGINE_COMBOS)
    def test_crash_recovery_bit_identical_all_engines(self, stack, br_engine,
                                                      rp_engine):
        """The acceptance bar: a node killed mid-fan-out must not change
        a single bit of the output, for every engine combination."""
        ctx, sk, ev, swk = stack
        z = np.random.default_rng(15).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=0)
        reference = SchemeSwitchBootstrapper(
            ctx, swk, blind_rotate_engine=br_engine,
            repack_engine=rp_engine).bootstrap(ct)
        injector = FaultInjector([Fault.crash(1, after=1)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=3,
                                   blind_rotate_engine=br_engine,
                                   repack_engine=rp_engine,
                                   fault_injector=injector)
        trace = BootstrapTrace()
        assert_bit_identical(reference, cluster.bootstrap(ct, trace))
        assert trace.fanout_retries == 1

    def test_retry_traffic_accounted_separately(self, stack):
        ctx, sk, ev, swk = stack
        ct = ev.encrypt(0.25, level=0)
        injector = FaultInjector([Fault.crash(1)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=3,
                                   fault_injector=injector)
        cluster.bootstrap(ct)
        comm = cluster.comm
        # Node 1's slice lands on node 2 (load 5 < the primary's 6): the
        # retry traffic is a strict subset of the totals and sits on the
        # recovery node's links, not the crashed node's.
        assert 0 < comm.total_retry_bytes() < comm.total_bytes()
        assert comm.retry_link_bytes(0, 2) > 0
        assert comm.retry_link_bytes(2, 0) > 0
        assert comm.retry_link_bytes(0, 1) == 0
        assert comm.retry_link_bytes(1, 0) == 0
        # First-attempt traffic to the crashed node is still in the totals
        # (the bytes crossed the wire before the crash was detected).
        assert comm.link_bytes(0, 1) > 0
