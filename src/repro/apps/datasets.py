"""Synthetic datasets standing in for MNIST-3v8 and CIFAR-10.

The paper trains LR on the MNIST 3-vs-8 subset (11,982 samples x 196
features, HELR's benchmark) and runs ResNet-20 on CIFAR-10.  Neither is
fetchable here, so we generate deterministic synthetic sets of the same
shape: two well-separated Gaussian classes for LR (preserving the
convergence/accuracy behaviour the paper reports — ~97% LR accuracy) and
random CIFAR-shaped tensors for the ResNet op-count model (which never
looks at pixel values).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The MNIST 3-vs-8 subset shape used by HELR and the paper.
MNIST_3V8_SAMPLES = 11982
MNIST_3V8_FEATURES = 196


@dataclass
class Dataset:
    """A labelled binary-classification dataset (labels in {0, 1})."""

    x: np.ndarray
    y: np.ndarray

    @property
    def num_samples(self) -> int:
        return self.x.shape[0]

    @property
    def num_features(self) -> int:
        return self.x.shape[1]

    def batches(self, batch_size: int):
        for start in range(0, self.num_samples, batch_size):
            yield self.x[start:start + batch_size], self.y[start:start + batch_size]


def synthetic_mnist_3v8(num_samples: int = MNIST_3V8_SAMPLES,
                        num_features: int = MNIST_3V8_FEATURES,
                        seed: int = 38, separation: float = 2.0) -> Dataset:
    """Two-class Gaussian surrogate with the MNIST-3v8 shape.

    ``separation`` controls class overlap; the default (Bayes accuracy
    ~Phi(2) ~ 97.7%) matches the paper's reported ~97% LR accuracy.
    """
    rng = np.random.default_rng(seed)
    direction = rng.normal(0, 1, num_features)
    direction /= np.linalg.norm(direction)
    y = rng.integers(0, 2, num_samples)
    x = rng.normal(0, 1.0, (num_samples, num_features))
    x += np.outer(2 * y.astype(float) - 1.0, direction) * separation
    # Feature scaling to [-1, 1]-ish, as HELR preprocesses pixel values.
    x /= np.max(np.abs(x))
    return Dataset(x=x, y=y)


def synthetic_cifar_batch(batch: int = 1, seed: int = 10) -> np.ndarray:
    """CIFAR-10-shaped input tensor(s): (batch, 3, 32, 32) in [0, 1]."""
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, (batch, 3, 32, 32))


def train_test_split(ds: Dataset, test_fraction: float = 0.2,
                     seed: int = 0):
    rng = np.random.default_rng(seed)
    idx = rng.permutation(ds.num_samples)
    cut = int(ds.num_samples * (1 - test_fraction))
    return (Dataset(ds.x[idx[:cut]], ds.y[idx[:cut]]),
            Dataset(ds.x[idx[cut:]], ds.y[idx[cut:]]))
