"""CKKS context: parameters + cached bases + component factories.

A :class:`CkksContext` bundles everything that is fixed for a protocol
run: the parameter set, the limb chain ``q_0 .. q_{L-1}``, the special
(auxiliary) primes used by the hybrid key switch, and the encoder.  All
higher-level objects (keys, evaluator, bootstrappers) are created from a
context so that ciphertexts produced by one context are never mixed with
another's.
"""

from __future__ import annotations

from typing import List

from ..errors import ParameterError
from ..math.rns import RnsBasis, concat_bases
from ..params import CkksParams
from .encoder import CkksEncoder


class CkksContext:
    """Immutable shared state for one CKKS instantiation."""

    def __init__(self, params: CkksParams, dnum: int = 2):
        if dnum < 1 or dnum > params.max_limbs:
            raise ParameterError(f"dnum must be in [1, {params.max_limbs}], got {dnum}")
        self.params = params
        self.n = params.n
        self.slots = params.slots
        self.dnum = dnum
        self.full_basis = params.basis()
        self.special_basis = params.special_basis()
        self.extended_basis = concat_bases(self.full_basis, self.special_basis)
        self.encoder = CkksEncoder(params.n, params.scale)
        # Hybrid-keyswitch noise control requires P >= each digit modulus.
        p_prod = self.special_basis.product
        for group in self.digit_groups(self.max_level):
            qj = 1
            for idx in group:
                qj *= self.full_basis.moduli[idx]
            if p_prod * 16 < qj:
                raise ParameterError(
                    "special modulus P is too small for dnum="
                    f"{dnum}: group product has {qj.bit_length()} bits, "
                    f"P has {p_prod.bit_length()}"
                )

    # -- basis helpers -----------------------------------------------------------

    def basis_at_level(self, level: int) -> RnsBasis:
        """Basis of a ciphertext at ``level`` (``level + 1`` limbs)."""
        return self.params.basis(level)

    @property
    def max_level(self) -> int:
        return self.params.max_limbs - 1

    def digit_groups(self, level: int) -> List[List[int]]:
        """Partition limb indices ``0..level`` into ``dnum`` contiguous groups.

        This is the digit structure of the hybrid key switch: each group's
        sub-modulus is ModUp-ed independently and paired with its own
        switching-key component (paper: decomposition number d = 2).
        """
        limbs = list(range(level + 1))
        size = (self.params.max_limbs + self.dnum - 1) // self.dnum
        groups = [limbs[i: i + size] for i in range(0, len(limbs), size)]
        return [g for g in groups if g]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CkksContext(N={self.n}, L={self.params.max_limbs}, "
            f"dnum={self.dnum}, scale=2^{self.params.scale_bits})"
        )
