"""Table VIII: performance from scheme switching vs from hardware.

The paper splits HEAP's gains into "scheme switching on CPU vs CKKS-only
on CPU" (Speedup 1) and "scheme switching on HEAP vs on CPU" (Speedup 2).
This bench produces three independent views:

1. **Measured wall-clock** of this repo's two bootstrap implementations,
   each at its natural toy parameter set (the conventional pipeline needs
   a 17-level chain; Algorithm 2 needs 3 limbs — that asymmetry *is* the
   paper's point).  Honest caveat, recorded in EXPERIMENTS.md: at
   N = 16 the toy-scale measurement inverts the paper's Speedup 1 —
   scheme switching performs n x n_t external products whose raw op count
   exceeds the conventional circuit's, and tiny rings plus interpreter
   constants do not reward its parallelism or its smaller parameters.
2. **Op-count analysis at production parameters** quantifying exactly
   that trade-off (more raw multiplies, 100% of them parallel).
3. The **recomputed paper columns** plus the hardware-model Speedup 2.
"""

import time

from conftest import emit

from repro.analysis import bootstrap_op_comparison, format_table, table8_ablation
from repro.ckks import (
    CkksContext,
    CkksEvaluator,
    CkksKeyGenerator,
    ConventionalBootstrapper,
    ConventionalBootstrapTrace,
    make_bootstrappable_toy_params,
)
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching import BootstrapTrace, SchemeSwitchBootstrapper, SwitchingKeySet

RING_N = 16


def _conventional_run():
    """Conventional bootstrap at its required deep chain (17 levels)."""
    params = make_bootstrappable_toy_params(n=RING_N, levels=17,
                                            delta_bits=24, q0_bits=30)
    ctx = CkksContext(params, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(71))
    sk = gen.secret_key()
    rots = ConventionalBootstrapper.required_rotation_indices(ctx)
    keys = gen.keyset(sk, rotations=rots, conjugate=True)
    ev = CkksEvaluator(ctx, keys, Sampler(72), scale_rtol=5e-2)
    boot = ConventionalBootstrapper(ctx, keys, evaluator=ev)
    ct = ev.encrypt(0.25, level=0)
    trace = ConventionalBootstrapTrace()
    start = time.perf_counter()
    out = boot.bootstrap(ct, trace)
    elapsed = time.perf_counter() - start
    err = abs(ev.decrypt(out, sk).real[0] - 0.25)
    assert err < 0.1, err
    return elapsed, trace.levels_consumed


def _scheme_switching_run():
    """Algorithm 2 at its natural short chain (the paper's argument:
    scheme switching makes 3 limbs enough where conventional needs ~20)."""
    params = make_toy_params(n=RING_N, limbs=3, limb_bits=30, scale_bits=23,
                             special_limbs=2)
    ctx = CkksContext(params.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(73))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(74))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(75), base_bits=6,
                                   error_std=0.8)
    boot = SchemeSwitchBootstrapper(ctx, swk)
    ct = ev.encrypt(0.25, level=0)
    trace = BootstrapTrace()
    start = time.perf_counter()
    out = boot.bootstrap(ct, trace)
    elapsed = time.perf_counter() - start
    err = abs(ev.decrypt(out, sk).real[0] - 0.25)
    assert err < 0.1, err
    levels_consumed = 1  # Algorithm 2 has bootstrap depth 1 by construction
    return elapsed, levels_consumed


def bench_table8(benchmark):
    conv_s, conv_levels = _conventional_run()
    ss_s, ss_levels = _scheme_switching_run()
    measured = {"bootstrapping": {"ckks_cpu": conv_s, "ss_cpu": ss_s}}
    headers, rows = benchmark.pedantic(
        table8_ablation, args=(measured,), rounds=1, iterations=1,
        warmup_rounds=0)
    ops = bootstrap_op_comparison()
    lines = [
        "Table VIII: speedup from scheme switching (SS) vs hardware",
        format_table(headers, rows),
        "",
        f"measured on this repo's Python stack (toy ring N={RING_N}, each",
        "algorithm at its natural parameter set):",
        f"  conventional bootstrap: {conv_s:7.2f} s, "
        f"{conv_levels} levels consumed",
        f"  scheme-switching:       {ss_s:7.2f} s, "
        f"{ss_levels} level consumed",
        "",
        "op-count analysis at production parameters (N=2^16/L=24 conventional",
        "vs N=2^13 scheme switching, from repro.analysis.opcounts):",
        f"  conventional scalar mults:     {ops['conventional_mults']:.3g}",
        f"  scheme-switching scalar mults: {ops['scheme_switching_mults']:.3g} "
        f"({ops['ss_over_conventional']:.1f}x more raw work,",
        f"  {ops['ss_parallel_fraction']:.0%} of it embarrassingly parallel "
        "-- the paper's gains come from",
        "  parallel scaling, the smaller application parameter set and 18x",
        "  less key traffic, not from fewer multiplications; see",
        "  EXPERIMENTS.md for why the toy-scale wall-clock inverts Speedup 1)",
    ]
    emit("table8_ablation", "\n".join(lines))
    # Structural claims that must hold at any scale:
    assert conv_levels >= 8      # conventional burns most of the chain
    assert ss_levels == 1        # Algorithm 2 consumes exactly one level
    assert ops["ss_parallel_fraction"] > 0.95
