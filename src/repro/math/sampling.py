"""Seeded randomness for key, error and mask sampling.

Both schemes draw from three distributions (paper Section II): uniform
masks over ``Z_q``, ternary secret keys (we avoid *sparse* secrets, as
the paper does for security reasons), and a discrete Gaussian error
``chi_err``.  Everything routes through one :class:`Sampler` so that a
single seed makes whole protocol runs reproducible in tests.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

DEFAULT_ERROR_STD = 3.2  # sigma used across the HE literature


def derive_seed(master_seed: int, *path: Union[int, str]) -> int:
    """Stable 63-bit child seed for ``(master, path)``.

    Used by the seeded key schedule (ARK-style runtime key generation):
    one master key seed fans out into one mask seed per key component
    (``derive_seed(ks, "brk", i, "+")``, ``derive_seed(ks, "auto", t)``,
    ...).  The derivation is a SHA-256 of the canonical path string, so
    it is identical across processes and Python versions — a worker that
    only received the master seed expands the exact same mask streams
    the generator drew.
    """
    h = hashlib.sha256()
    h.update(str(int(master_seed)).encode())
    for part in path:
        h.update(b"/")
        h.update(str(part).encode())
    return int.from_bytes(h.digest()[:8], "big") >> 1


def mask_stream(seed: int, error_std: float = DEFAULT_ERROR_STD) -> "Sampler":
    """The replayable uniform-mask stream for one seeded key component.

    Seeded keygen draws every uniform ``a``-half from this stream in a
    fixed documented order; expansion constructs the same stream from the
    stored seed and replays it.  (A plain :class:`Sampler` — the alias
    exists so call sites say what the stream is for.)
    """
    return Sampler(seed, error_std)


class Sampler:
    """Deterministic (seeded) source for all random material."""

    def __init__(self, seed: Optional[int] = None, error_std: float = DEFAULT_ERROR_STD):
        self.rng = np.random.default_rng(seed)
        self.error_std = error_std

    # -- secrets -------------------------------------------------------------

    def ternary(self, n: int) -> np.ndarray:
        """Uniform ternary vector over ``{-1, 0, 1}`` (non-sparse)."""
        return self.rng.integers(-1, 2, size=n, dtype=np.int64)

    def binary(self, n: int) -> np.ndarray:
        """Uniform binary vector — TFHE LWE secret keys are binary, which
        keeps the blind-rotate key at the two RGSW components
        ``RGSW(s_i^+), RGSW(s_i^-)`` of Algorithm 1."""
        return self.rng.integers(0, 2, size=n, dtype=np.int64)

    # -- noise ---------------------------------------------------------------

    def gaussian(self, n: int, std: Optional[float] = None) -> np.ndarray:
        """Rounded Gaussian over the integers (centred)."""
        sigma = self.error_std if std is None else std
        return np.rint(self.rng.normal(0.0, sigma, size=n)).astype(np.int64)

    # -- masks ----------------------------------------------------------------

    def uniform(self, n: int, q: int) -> np.ndarray:
        """Uniform residues in ``[0, q)`` (object dtype for wide moduli)."""
        if q < (1 << 62):
            arr = self.rng.integers(0, q, size=n, dtype=np.uint64)
            if q < (1 << 31):
                return arr.astype(np.int64)
            return arr.astype(object)
        # Very wide modulus: build from 32-bit words.
        words = (q.bit_length() + 31) // 32
        out = np.zeros(n, dtype=object)
        for _ in range(words):
            out = (out << 32) | self.rng.integers(0, 1 << 32, size=n, dtype=np.uint64).astype(object)
        return np.mod(out, q)

    def uniform_scalar(self, q: int) -> int:
        return int(self.uniform(1, q)[0])

    def spawn(self) -> "Sampler":
        """Independent child sampler (stable fan-out for parallel key gen)."""
        return Sampler(int(self.rng.integers(0, 2**63)), self.error_std)
