"""Chebyshev interpolation and homomorphic polynomial evaluation.

Conventional CKKS bootstrapping approximates the modular-reduction
function with a scaled sine, which is in turn approximated by a Chebyshev
expansion (paper Section III-B / Fig. 1a "polynomial approximation of
modular reduction").  This module provides

* :class:`ChebyshevApprox` — numeric interpolation of an arbitrary
  function on ``[a, b]``;
* :func:`eval_chebyshev` — homomorphic evaluation in the Chebyshev basis
  with baby-step/giant-step structure, consuming ``O(log d)`` levels via
  the recursive quotient-remainder split ``p = quot * T_g + rem``.

Scale discipline: the caller is expected to run a "fixed-point" style
evaluator (all rescale primes within a hair of ``Delta`` and a loose
``scale_rtol``) so that every intermediate stays at scale ~ ``Delta``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np
from numpy.polynomial import chebyshev as npcheb

from ..errors import ParameterError
from .ciphertext import CkksCiphertext
from .evaluator import CkksEvaluator


@dataclass
class ChebyshevApprox:
    """Chebyshev expansion of ``f`` on ``[a, b]``: ``sum c_i T_i(t)`` with
    ``t = (2x - a - b) / (b - a)``."""

    coeffs: np.ndarray
    a: float
    b: float

    @classmethod
    def interpolate(cls, f: Callable[[np.ndarray], np.ndarray], a: float,
                    b: float, degree: int) -> "ChebyshevApprox":
        if degree < 1:
            raise ParameterError("degree must be >= 1")
        # Interpolate g(t) = f(x(t)) at Chebyshev nodes on [-1, 1].
        def g(t):
            return f((t * (b - a) + (a + b)) / 2.0)

        coeffs = npcheb.chebinterpolate(g, degree)
        return cls(coeffs=np.asarray(coeffs, dtype=np.float64), a=a, b=b)

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def __call__(self, x: np.ndarray) -> np.ndarray:
        t = (2.0 * np.asarray(x) - self.a - self.b) / (self.b - self.a)
        return npcheb.chebval(t, self.coeffs)

    def max_error(self, f: Callable[[np.ndarray], np.ndarray],
                  samples: int = 2048) -> float:
        xs = np.linspace(self.a, self.b, samples)
        return float(np.max(np.abs(self(xs) - f(xs))))


def eval_chebyshev(ev: CkksEvaluator, ct: CkksCiphertext,
                   approx: ChebyshevApprox) -> CkksCiphertext:
    """Homomorphically evaluate ``approx`` at the (slot-wise) values of
    ``ct``.  Depth ~ ``log2(degree) + 1`` levels."""
    return eval_chebyshev_many(ev, ct, [approx])[0]


def eval_chebyshev_many(ev: CkksEvaluator, ct: CkksCiphertext,
                        approxes: List[ChebyshevApprox]) -> List[CkksCiphertext]:
    """Evaluate several expansions over the *same* interval at once,
    sharing the homomorphic Chebyshev basis (the sine/cosine pair of the
    double-angle EvalMod costs barely more than one evaluation)."""
    if not approxes:
        raise ParameterError("need at least one expansion")
    a, b = approxes[0].a, approxes[0].b
    if any((p.a, p.b) != (a, b) for p in approxes):
        raise ParameterError("expansions must share their interval")
    # Affine change of variable onto [-1, 1]:
    #   t = alpha * x + beta,  alpha = 2/(b-a),  beta = -(a+b)/(b-a).
    alpha = 2.0 / (b - a)
    beta = -(a + b) / (b - a)
    slots = ev.ctx.slots
    t1 = ev.rescale(ev.mul_plain(ct, np.full(slots, alpha)))
    t1 = ev.add_plain(t1, np.full(slots, beta))

    d = max(len(p.coeffs) - 1 for p in approxes)
    if d < 1:
        raise ParameterError("cannot evaluate a constant expansion")
    babies = max(2, 1 << int(np.ceil(np.log2(max(2, d + 1)) / 2)))
    basis = _ChebBasis(ev, t1, babies, d)
    outs = []
    for approx in approxes:
        out = _eval_rec(ev, np.asarray(approx.coeffs, dtype=np.float64), basis)
        if out is None:  # pragma: no cover - all-zero coefficients
            out = ev.mul_scalar_int(t1, 0)
        outs.append(out)
    return outs


#: Re-normalise a basis polynomial's scale once relative drift exceeds this.
_BRIDGE_THRESHOLD = 5e-4


class _ChebBasis:
    """Lazily computed homomorphic Chebyshev polynomials ``T_i(t)``.

    Every cached ``T_i`` is kept at scale ``~ Delta`` exactly: rescale
    primes are merely *close* to ``Delta``, and the resulting per-level
    drift compounds geometrically through the doubling formula, so after
    each doubling we "bridge" — multiply by 1.0 encoded at the
    compensating scale and rescale — whenever the drift passed
    ``_BRIDGE_THRESHOLD``.  This is the scale-management step real RNS
    implementations perform implicitly via scale targeting.
    """

    def __init__(self, ev: CkksEvaluator, t1: CkksCiphertext, babies: int,
                 degree: int):
        self.ev = ev
        self.babies = babies
        self._cache: Dict[int, CkksCiphertext] = {1: self._bridge(t1)}
        # Precompute giants by repeated doubling: T_2g = 2 T_g^2 - 1.
        g = babies
        while g <= degree:
            self.get(g)
            g *= 2

    def _bridge(self, ct: CkksCiphertext) -> CkksCiphertext:
        """Force ``ct.scale`` back to exactly ``Delta`` (costs one level)."""
        ev = self.ev
        delta = ev.ctx.params.scale
        if abs(ct.scale / delta - 1.0) <= _BRIDGE_THRESHOLD:
            return ct
        q_next = ct.basis.moduli[ct.level]
        bridge_scale = delta * q_next / ct.scale
        out = ev.rescale(ev.mul_plain(ct, np.full(ev.ctx.slots, 1.0),
                                      scale=bridge_scale))
        out.scale = delta  # exact by construction; clear float residue
        return out

    def get(self, i: int) -> CkksCiphertext:
        if i < 1:
            raise ParameterError("T_0 is plaintext; handled separately")
        ct = self._cache.get(i)
        if ct is not None:
            return ct
        ev = self.ev
        if i % 2 == 0:
            half = self.get(i // 2)
            sq = ev.mul_relin_rescale(half, half)
            ct = ev.add_plain(ev.mul_scalar_int(sq, 2), np.full(ev.ctx.slots, -1.0))
        else:
            # T_{a+b} = 2 T_a T_b - T_{|a-b|} with a = (i+1)/2, b = (i-1)/2.
            a, b = (i + 1) // 2, (i - 1) // 2
            prod = ev.mul_relin_rescale(self.get(a), self.get(b))
            prod2 = ev.mul_scalar_int(prod, 2)
            other = self.get(a - b)  # = T_1
            other = self.ev.drop_to_level(other, min(other.level, prod2.level))
            prod2 = self.ev.drop_to_level(prod2, other.level)
            ct = ev.sub(prod2, other)
        ct = self._bridge(ct)
        self._cache[i] = ct
        return ct


def _eval_rec(ev: CkksEvaluator, coeffs: np.ndarray, basis: _ChebBasis):
    """Recursive BSGS evaluation; returns None for an all-~zero block."""
    coeffs = np.trim_zeros(coeffs, "b")
    if len(coeffs) == 0:
        return None
    d = len(coeffs) - 1
    if d < basis.babies:
        return _eval_direct(ev, coeffs, basis)
    g = basis.babies
    while 2 * g <= d:
        g *= 2
    divisor = np.zeros(g + 1)
    divisor[g] = 1.0
    quot, rem = npcheb.chebdiv(coeffs, divisor)
    q_ct = _eval_rec(ev, quot, basis)
    r_ct = _eval_rec(ev, rem, basis)
    t_g = basis.get(g)
    if q_ct is None:
        return r_ct
    lvl = min(q_ct.level, t_g.level)
    prod = ev.mul_relin_rescale(ev.drop_to_level(q_ct, lvl),
                                ev.drop_to_level(t_g, lvl))
    if r_ct is None:
        return prod
    lvl = min(prod.level, r_ct.level)
    return ev.add(ev.drop_to_level(prod, lvl), ev.drop_to_level(r_ct, lvl))


def _eval_direct(ev: CkksEvaluator, coeffs: np.ndarray, basis: _ChebBasis):
    """``sum_i c_i T_i`` for a short block (the baby-step part)."""
    slots = ev.ctx.slots
    terms: List[CkksCiphertext] = []
    for i, c in enumerate(coeffs):
        if i == 0 or abs(c) < 1e-12:
            continue
        t_i = basis.get(i)
        term = ev.rescale(ev.mul_plain(t_i, np.full(slots, float(c))))
        terms.append(term)
    if not terms:
        if abs(coeffs[0]) < 1e-12:
            return None
        anchor = ev.rescale(ev.mul_plain(basis.get(1), np.full(slots, 0.0)))
        return ev.add_plain(anchor, np.full(slots, float(coeffs[0])))
    lvl = min(t.level for t in terms)
    acc = ev.drop_to_level(terms[0], lvl)
    for t in terms[1:]:
        acc = ev.add(acc, ev.drop_to_level(t, lvl))
    if abs(coeffs[0]) >= 1e-12:
        acc = ev.add_plain(acc, np.full(slots, float(coeffs[0])))
    return acc
