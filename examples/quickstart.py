#!/usr/bin/env python3
"""Quickstart: encrypted arithmetic and the scheme-switching bootstrap.

Runs the full HEAP pipeline at toy ring size (a few seconds on a laptop):

1. set up CKKS, encrypt a vector,
2. burn through every level with multiplications,
3. refresh the exhausted ciphertext with the paper's scheme-switching
   bootstrap (Algorithm 2: ModulusSwitch -> Extract -> parallel
   BlindRotate -> repack -> add -> rescale),
4. keep computing on the refreshed ciphertext.
"""

import numpy as np

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.ckks.bootstrap import make_bootstrappable_toy_params
from repro.math.sampling import Sampler
from repro.switching import BootstrapTrace, SchemeSwitchBootstrapper, SwitchingKeySet


def main() -> None:
    # Toy parameters: N=16 with a fixed-point limb chain (rescale primes
    # ~ Delta, wider base limb) so the scale survives the multiplication
    # chain.  The paper runs the same code at N=2^13 with 36-bit limbs.
    params = make_bootstrappable_toy_params(n=16, levels=3, delta_bits=22,
                                            q0_bits=28)
    ctx = CkksContext(params, dnum=2)
    print(f"context: {ctx}")

    gen = CkksKeyGenerator(ctx, Sampler(1))
    sk = gen.secret_key()
    keys = gen.keyset(sk)
    ev = CkksEvaluator(ctx, keys, Sampler(2))

    values = np.linspace(0.2, 0.9, ctx.slots)
    ct = ev.encrypt(values)
    print(f"encrypted {ctx.slots} slots at level {ct.level}")

    # Exhaust the levels: x -> x^2 -> x^4.
    expected = values.copy()
    while ct.level > 0:
        companion = ev.encrypt(expected, level=ct.level, scale=ct.scale)
        ct = ev.mul_relin_rescale(ct, companion)
        expected = expected * expected
        print(f"  mult -> level {ct.level}")
    print("levels exhausted; no further multiplication possible")

    # Scheme-switching bootstrap (paper Algorithm 2).
    print("generating switching keys (blind-rotate + repack keys)...")
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(3), base_bits=4,
                                   error_std=0.8)
    boot = SchemeSwitchBootstrapper(ctx, swk)
    trace = BootstrapTrace()
    refreshed = boot.bootstrap(ct, trace)
    print(f"bootstrap: {trace.num_lwe} LWE ciphertexts extracted, "
          f"{trace.num_blind_rotates} parallel BlindRotates, "
          f"{trace.repack_keyswitches} repack key switches")
    print(f"refreshed ciphertext level: {refreshed.level}")

    err = np.max(np.abs(ev.decrypt(refreshed, sk).real - expected))
    print(f"post-bootstrap max error: {err:.4f}")

    # And multiplication works again.
    again = ev.mul_relin_rescale(
        refreshed, ev.encrypt(expected, level=refreshed.level,
                              scale=refreshed.scale))
    err = np.max(np.abs(ev.decrypt(again, sk).real - expected ** 2))
    print(f"post-bootstrap multiplication max error: {err:.4f}")


if __name__ == "__main__":
    main()
