"""Section III-C size audit: ciphertext/key sizes, the 18x key-traffic
reduction claim, and the seeded (seed+``b``) at-rest sizes.

Emits ``BENCH_keysizes.json`` through the shared ``write_bench_json``
harness (so every run also lands in ``benchmarks/out/trajectory.jsonl``)
with three sections:

* the paper's size audit (model formula vs paper number, rel 12% gate);
* seeded at-rest sizes — the formula at paper parameters *and* a
  measured compression ratio from real toy-parameter keys
  (``SwitchingKeySet.generate_seeded().compress()``), gated >= 1.9x;
* key-streaming lower bounds at 460 GB/s HBM for the conventional,
  scheme-switching, and seeded-at-rest key volumes.

Run with ``PYTHONPATH=src python benchmarks/bench_keysizes.py`` (or via
pytest).  ``--quick`` skips the toy keygen measurement (formula and
audit gates still enforced).
"""

import os
import sys

try:
    from conftest import emit
except ImportError:  # running as a plain script, not under pytest
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import emit

from _timing import write_bench_json

from repro.analysis import format_table, key_size_table
from repro.ckks import CkksContext, CkksKeyGenerator
from repro.hardware import (
    ConventionalKeyTraffic,
    bootstrap_hbm_seconds,
    key_traffic_reduction,
    scheme_switching_key_bytes,
    seeded_scheme_switching_key_bytes,
)
from repro.math.sampling import Sampler
from repro.params import make_heap_params, make_toy_params

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_keysizes.json")

HBM_BPS = 460e9


def _measured_toy_ratio():
    """Compression measured on real keys, not the formula: generate a
    seeded toy-parameter switching key set and compare its expanded
    resident bytes against the compressed seed+``b`` material."""
    from repro.switching.keys import SwitchingKeySet

    params = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                             special_limbs=2)
    ctx = CkksContext(params.ckks, dnum=2)
    sk = CkksKeyGenerator(ctx, Sampler(501)).secret_key()
    swk = SwitchingKeySet.generate_seeded(ctx, sk, key_seed=99, base_bits=4,
                                          error_std=0.8)
    material = swk.compress()
    return swk.resident_bytes(), material.resident_bytes()


def _run(quick=False):
    params = make_heap_params()
    log_q = params.ckks.log_q_total

    # -- paper audit --------------------------------------------------------
    headers, rows = key_size_table()
    for r in rows:
        rel = abs(r["Model"] - r["Paper"]) / abs(r["Paper"])
        assert rel < 0.12, (r["Quantity"], r["Model"], r["Paper"])

    # -- seeded at-rest sizes ----------------------------------------------
    ss_bytes = scheme_switching_key_bytes(params.tfhe, log_q)
    seeded_bytes = seeded_scheme_switching_key_bytes(params.tfhe, log_q)
    formula_ratio = ss_bytes / seeded_bytes
    assert formula_ratio >= 1.9, formula_ratio
    seeded_rows = [
        {"Quantity": "seeded brk at rest (GB)",
         "Model": round(seeded_bytes / 1e9, 2), "Paper": None},
        {"Quantity": "seed+b compression (x)",
         "Model": round(formula_ratio, 2), "Paper": None},
    ]
    measured = None
    if not quick:
        expanded_b, at_rest_b = _measured_toy_ratio()
        measured_ratio = expanded_b / at_rest_b
        assert measured_ratio >= 1.9, measured_ratio
        measured = {"expanded_bytes": expanded_b, "at_rest_bytes": at_rest_b,
                    "ratio": round(measured_ratio, 3)}
        seeded_rows.append(
            {"Quantity": "measured toy compression (x)",
             "Model": round(measured_ratio, 2), "Paper": None})
    all_rows = rows + seeded_rows

    # -- streaming lower bounds --------------------------------------------
    conv = ConventionalKeyTraffic()
    bounds = {
        "conventional_s": bootstrap_hbm_seconds(conv.total_bytes, HBM_BPS),
        "scheme_switching_s": bootstrap_hbm_seconds(ss_bytes, HBM_BPS),
        "seeded_at_rest_s": bootstrap_hbm_seconds(seeded_bytes, HBM_BPS),
    }
    assert bounds["conventional_s"] / bounds["scheme_switching_s"] > 15

    write_bench_json(
        JSON_PATH, "keysizes", all_rows,
        extra={"hbm_bytes_per_s": HBM_BPS,
               "streaming_lower_bounds_s":
                   {k: round(v, 6) for k, v in bounds.items()},
               "key_traffic_reduction_x":
                   round(key_traffic_reduction(params.tfhe, log_q), 1),
               "measured_toy_compression": measured})

    text = ["Section III-C: key sizes and traffic (+ seeded at-rest form)",
            format_table(headers, all_rows),
            "",
            f"Key-streaming lower bounds at {HBM_BPS / 1e9:.0f} GB/s HBM:",
            f"  conventional:     {conv.total_bytes / 1e9:>6.1f} GB -> "
            f"{bounds['conventional_s'] * 1e3:7.1f} ms",
            f"  scheme switching: {ss_bytes / 1e9:>6.2f} GB -> "
            f"{bounds['scheme_switching_s'] * 1e3:7.2f} ms",
            f"  seeded at rest:   {seeded_bytes / 1e9:>6.2f} GB -> "
            f"{bounds['seeded_at_rest_s'] * 1e3:7.2f} ms "
            "(+ on-chip mask expansion)",
            f"  reduction: "
            f"{key_traffic_reduction(params.tfhe, log_q):.1f}x (paper: ~18x)"]
    emit("keysizes", "\n".join(text))
    return all_rows


def bench_keysizes():
    _run(quick=False)


if __name__ == "__main__":
    _run(quick="--quick" in sys.argv[1:])
    print("bench_keysizes: OK")
