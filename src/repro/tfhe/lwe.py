"""LWE ciphertexts: encryption, arithmetic, modulus switching, key switching.

Paper Eq. (1): ``ct = (a, b) = (a, -<a, s> + e + m)`` so the *phase*
``b + <a, s>`` recovers ``m + e``.  The two operations the paper singles
out (Section II-B) are

* :func:`modulus_switch` — rescale every component from ``q`` to ``2N``
  before blind rotation ("not expensive as N is a power of two"), and
* :class:`LweKeySwitchKey` — switch an extracted dimension-``N`` LWE
  ciphertext down to dimension ``n_t`` ("a vector of h*N*d LWE
  ciphertexts").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ParameterError
from ..math.gadget import GadgetVector
from ..math.modular import ModulusEngine
from ..math.sampling import Sampler


@dataclass
class LweSecretKey:
    """Ternary LWE secret of dimension ``n``."""

    coeffs: np.ndarray  # int64/object array of -1/0/1

    @property
    def dim(self) -> int:
        return len(self.coeffs)

    @classmethod
    def generate(cls, n: int, sampler: Sampler) -> "LweSecretKey":
        return cls(coeffs=sampler.ternary(n).astype(object))

    def __repr__(self) -> str:
        """Redacted: dimensions only, never the coefficient payload."""
        return f"LweSecretKey(dim={self.dim}, coeffs=<redacted>)"


@dataclass
class LweCiphertext:
    """``(a, b)`` over ``Z_q^(n+1)`` decrypting via ``b + <a, s>``."""

    a: np.ndarray
    b: int
    q: int

    @property
    def dim(self) -> int:
        return len(self.a)

    def __add__(self, other: "LweCiphertext") -> "LweCiphertext":
        self._check(other)
        eng = ModulusEngine(self.q)
        return LweCiphertext(eng.add(self.a, other.a), (self.b + other.b) % self.q, self.q)

    def __sub__(self, other: "LweCiphertext") -> "LweCiphertext":
        self._check(other)
        eng = ModulusEngine(self.q)
        return LweCiphertext(eng.sub(self.a, other.a), (self.b - other.b) % self.q, self.q)

    def __neg__(self) -> "LweCiphertext":
        eng = ModulusEngine(self.q)
        return LweCiphertext(eng.neg(self.a), (-self.b) % self.q, self.q)

    def scale(self, k: int) -> "LweCiphertext":
        eng = ModulusEngine(self.q)
        return LweCiphertext(eng.mul(self.a, k % self.q), self.b * k % self.q, self.q)

    def _check(self, other: "LweCiphertext") -> None:
        if self.q != other.q or self.dim != other.dim:
            raise ParameterError("LWE ciphertext mismatch")

    def size_bytes(self) -> int:
        """Paper Section III-C accounting: (n_t + 1) * ceil(log q) bits."""
        return (self.dim + 1) * self.q.bit_length() // 8


def lwe_encrypt(m: int, sk: LweSecretKey, q: int, sampler: Sampler,
                error_std: Optional[float] = None) -> LweCiphertext:
    """Encrypt an integer message (caller handles scaling/encoding)."""
    eng = ModulusEngine(q)
    a = eng.asarray(sampler.uniform(sk.dim, q))
    e = int(sampler.gaussian(1, error_std)[0])
    inner = int(np.dot(a.astype(object), sk.coeffs)) % q
    b = (m + e - inner) % q
    return LweCiphertext(a=a, b=b, q=q)


def lwe_encrypt_seeded(m: int, sk: LweSecretKey, q: int, mask_rng: Sampler,
                       noise: Sampler,
                       error_std: Optional[float] = None) -> LweCiphertext:
    """Encrypt with the uniform ``a``-vector drawn from a replayable
    seeded stream (one ``uniform(dim, q)`` call); errors come from the
    separate ``noise`` sampler.  Only ``b`` plus the seed need storing."""
    eng = ModulusEngine(q)
    a = eng.asarray(mask_rng.uniform(sk.dim, q))
    e = int(noise.gaussian(1, error_std)[0])
    inner = int(np.dot(a.astype(object), sk.coeffs)) % q
    b = (m + e - inner) % q
    return LweCiphertext(a=a, b=b, q=q)


def lwe_phase(ct: LweCiphertext, sk: LweSecretKey) -> int:
    """``b + <a, s> mod q`` — equals ``m + e``."""
    inner = int(np.dot(ct.a.astype(object), sk.coeffs))
    return (ct.b + inner) % ct.q


def lwe_decrypt(ct: LweCiphertext, sk: LweSecretKey) -> int:
    """Centred phase in ``(-q/2, q/2]`` — message plus noise."""
    p = lwe_phase(ct, sk)
    return p - ct.q if p > ct.q // 2 else p


def modulus_switch(ct: LweCiphertext, new_q: int) -> LweCiphertext:
    """Rescale each component to ``new_q`` by rounding (``q -> 2N``).

    Adds rounding noise ~ ||s||_1 / 2 in the new modulus — the standard
    TFHE pre-bootstrap step (paper ModulusSwitch).
    """
    q = ct.q
    a = np.asarray(ct.a, dtype=object)
    new_a = (a * new_q + q // 2) // q % new_q
    new_b = (int(ct.b) * new_q + q // 2) // q % new_q
    eng = ModulusEngine(new_q)
    return LweCiphertext(a=eng.asarray(new_a), b=int(new_b), q=new_q)


@dataclass
class LweKeySwitchKey:
    """Keys switching from ``sk_in`` (dim N) to ``sk_out`` (dim n_t).

    ``rows[i][k]`` encrypts ``g_k * s_in[i]`` under ``sk_out``; switching
    decomposes each ``a_i`` into digits and MACs against the rows — the
    same decompose-then-external-product pattern as everything else in
    the accelerator (paper Section VII-A).
    """

    rows: List[List[LweCiphertext]]
    gadget: GadgetVector

    @classmethod
    def generate(cls, sk_in: LweSecretKey, sk_out: LweSecretKey, q: int,
                 gadget: GadgetVector, sampler: Sampler) -> "LweKeySwitchKey":
        rows = []
        for i in range(sk_in.dim):
            row = []
            for g in gadget.factors():
                m = int(sk_in.coeffs[i]) * g % q
                row.append(lwe_encrypt(m, sk_out, q, sampler))
            rows.append(row)
        return cls(rows=rows, gadget=gadget)

    @classmethod
    def generate_seeded(cls, sk_in: LweSecretKey, sk_out: LweSecretKey, q: int,
                        gadget: GadgetVector, mask_rng: Sampler,
                        noise: Sampler) -> "LweKeySwitchKey":
        """Seeded variant: every row ciphertext's ``a``-vector streams from
        one replayable ``mask_rng`` (row order ``i`` outer, digit ``k``
        inner), so the at-rest key is the ``N * d`` scalars ``b`` plus one
        seed — the §III-C LWE key-switch key shrinks by ~``n_t``x."""
        rows = []
        for i in range(sk_in.dim):
            row = []
            for g in gadget.factors():
                m = int(sk_in.coeffs[i]) * g % q
                row.append(lwe_encrypt_seeded(m, sk_out, q, mask_rng, noise))
            rows.append(row)
        return cls(rows=rows, gadget=gadget)

    def bodies(self) -> List[List[int]]:
        """Stored half of the seed+``b`` form (row-major digit order)."""
        return [[ct.b for ct in row] for row in self.rows]

    def num_ciphertexts(self) -> int:
        return sum(len(r) for r in self.rows)


def expand_lwe_keyswitch_key(mask_rng: Sampler, bodies: List[List[int]],
                             out_dim: int, q: int,
                             gadget: GadgetVector) -> LweKeySwitchKey:
    """Rebuild a seeded LWE key-switch key bit-identically from seed + ``b``s."""
    eng = ModulusEngine(q)
    rows = []
    for row_bodies in bodies:
        if len(row_bodies) != gadget.digits:
            raise ParameterError("seeded LWE ksk body count does not match gadget digits")
        rows.append([LweCiphertext(a=eng.asarray(mask_rng.uniform(out_dim, q)),
                                   b=int(b), q=q)
                     for b in row_bodies])
    return LweKeySwitchKey(rows=rows, gadget=gadget)


def lwe_keyswitch(ct: LweCiphertext, ksk: LweKeySwitchKey) -> LweCiphertext:
    """Switch ``ct`` to the output key's dimension."""
    if len(ksk.rows) != ct.dim:
        raise ParameterError("key switching key dimension mismatch")
    q = ct.q
    out_dim = ksk.rows[0][0].dim
    eng = ModulusEngine(q)
    acc_a = eng.zeros(out_dim)
    acc_b = int(ct.b)
    digits = ksk.gadget.decompose(np.asarray(ct.a, dtype=object))
    for k, digit_vec in enumerate(digits):
        for i in range(ct.dim):
            d = int(digit_vec[i])
            if d == 0:
                continue
            row = ksk.rows[i][k]
            acc_a = eng.add(acc_a, eng.mul(row.a, d % q))
            acc_b = (acc_b + d * row.b) % q
    return LweCiphertext(a=eng.reduce(acc_a), b=acc_b % q, q=q)
