"""Non-linear functions on CKKS ciphertexts via scheme switching (§III-A).

The paper motivates scheme switching with exactly this use case before
specialising it to bootstrapping: "for each extracted LWE ciphertext, we
perform the blind rotation with some initial function f.  The function f
can be set as required by the application ... sigmoid, exponentiation, or
ReLU".  This module implements that general path:

1. Extract the ``N`` coefficient LWE ciphertexts of a CKKS ciphertext
   (mod ``q``, dimension ``N``).
2. ModulusSwitch each to ``2N``.  The phase becomes
   ``t_i ~ round(2N * m_i / q) (mod 2N)`` — the ``q*k`` wraps vanish
   modulo ``2N``, so ``t_i`` is a ``log2(2N)``-bit quantisation of the
   slot-encoded value.
3. BlindRotate with the LUT ``g(t) = p * Delta * f(t * q / (2N * Delta))``
   (folded with ``N^{-1}`` for the repack factor), repack, and rescale by
   ``p`` — an encryption of ``Delta * f(v_i)`` over the full modulus
   ``Q``, i.e. a *fresh, top-level* CKKS ciphertext of ``f(values)``.

Precision is limited by the ``2N``-bucket quantisation (plus blind-rotate
noise), and the function domain must satisfy ``|v| < q / (4 * Delta)`` so
the quantised phase stays inside the anti-periodic LUT's faithful range.
Unlike the Chebyshev route this evaluates *discontinuous* functions
(sign, step, ReLU's kink) exactly and costs no multiplicative depth — the
output is at the top level.

The LUT acts per *coefficient* of the plaintext polynomial, so inputs
must be **coefficient-packed** (``CkksEvaluator.encrypt_coeffs`` — the
Pegasus packing): the canonical embedding mixes slot values across
coefficients and would turn a slot-wise non-linearity into garbage.  A
slot-packed ciphertext can be brought to coefficient packing with one
SlotToCoeff linear transform (see :mod:`repro.ckks.bootstrap`'s
matrices) and back afterwards, exactly as Pegasus [41] does; the tests
and example here use coefficient packing directly.

This module used to be a fork of the bootstrap: its own extract loop, its
own LUT builder, its own repack call — bypassing the engine flags, the
executors and the trace accounting.  It is now a thin shell over
:class:`~repro.switching.pipeline.BootstrapPipeline` (stage kernels here,
orchestration there): the LUT math lives in
:mod:`~repro.switching.luts`, cached on the key set's registry, and the
fan-out runs through any executor — local, simulated cluster, or the
multiprocessing pool — with bit-identical results.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..ckks.ciphertext import CkksCiphertext
from ..ckks.context import CkksContext
from ..errors import ParameterError
from ..tfhe.lwe import LweCiphertext
from .keys import SwitchingKeySet
from .luts import relu_fn, sigmoid_fn, sign_fn  # noqa: F401  (public API)
from .pipeline import BootstrapPipeline, BootstrapTrace, Executor

_U64_MAX = (1 << 64) - 1


# -- the PBS ModSwitch+Extract kernel ---------------------------------------------


def pbs_extract_reference(c0, c1, n: int, two_n: int,
                          q: int) -> List[LweCiphertext]:
    """Reference oracle for the PBS extraction: the original per-index
    Python loop over arbitrary-precision integers.  Kept verbatim as the
    bit-identity baseline for the vectorized kernel (and as the fallback
    when ``q`` is too wide for the uint64 fast path)."""
    c0 = np.asarray(c0, dtype=object)  # heaplint: disable=HL001 reference oracle, exact big-int arithmetic by design
    c1 = np.asarray(c1, dtype=object)  # heaplint: disable=HL001 reference oracle, exact big-int arithmetic by design
    lwes = []
    for i in range(n):
        head = c1[: i + 1][::-1]
        tail = c1[i + 1:][::-1]
        a_q = np.concatenate([head, (q - tail) % q]) % q
        a_ms = ((a_q * two_n + q // 2) // q) % two_n
        b_ms = ((int(c0[i]) * two_n + q // 2) // q) % two_n
        lwes.append(LweCiphertext(a=a_ms.astype(np.int64), b=int(b_ms),
                                  q=two_n))
    return lwes


def pbs_extract_vectorized(c0, c1, n: int, two_n: int,
                           q: int) -> List[LweCiphertext]:
    """One negacyclic gather + uint64 rounding modswitch for all ``N``
    extractions at once.

    Row ``i`` of the old loop is ``[c1[i], .., c1[0], -c1[n-1], ..,
    -c1[i+1]]`` — i.e. ``a[i, j] = c1[(i - j) mod n]``, negated where
    ``j > i``.  The modswitch ``(a*2N + q/2) // q`` stays inside uint64
    as long as ``(q-1)*2N + q/2 <= 2^64 - 1`` (checked; callers fall
    back to the reference kernel beyond that)."""
    if (q - 1) * two_n + q // 2 > _U64_MAX:
        raise ParameterError(
            f"q={q} too wide for the uint64 PBS extract fast path")
    c0_u = np.asarray(c0, dtype=np.uint64)
    c1_u = np.asarray(c1, dtype=np.uint64)
    idx = np.arange(n)
    a_q = c1_u[(idx[:, None] - idx[None, :]) % n]
    negate = idx[None, :] > idx[:, None]
    a_q[negate] = (q - a_q[negate]) % q
    a_ms = ((a_q * np.uint64(two_n) + np.uint64(q // 2)) // np.uint64(q)) \
        % np.uint64(two_n)
    b_ms = ((c0_u * np.uint64(two_n) + np.uint64(q // 2)) // np.uint64(q)) \
        % np.uint64(two_n)
    a64 = a_ms.astype(np.int64)
    return [LweCiphertext(a=a64[i], b=int(b_ms[i]), q=two_n)
            for i in range(n)]


def pbs_extract(ct: CkksCiphertext,
                engine: str = "vectorized") -> List[LweCiphertext]:
    """The programmable path's ModSwitch + Extract for a level-0,
    coefficient-packed ciphertext: the ``N`` dimension-``N`` LWEs with
    phases ``round(2N * m_i / q) mod 2N``.

    ``engine="vectorized"`` runs the uint64 gather kernel (falling back
    to the reference loop when ``q`` exceeds its overflow guard);
    ``engine="reference"`` forces the exact big-int loop.  Both are
    bit-identical (tests assert it)."""
    if engine not in ("vectorized", "reference"):
        raise ParameterError(f"unknown pbs extract engine {engine!r}")
    n = len(ct.c0.limbs[0])
    two_n = 2 * n
    q = ct.basis.moduli[0]
    c0 = ct.c0.to_coeff().limbs[0]
    c1 = ct.c1.to_coeff().limbs[0]
    if engine == "vectorized" and (q - 1) * two_n + q // 2 <= _U64_MAX:
        return pbs_extract_vectorized(c0, c1, n, two_n, q)
    return pbs_extract_reference(c0, c1, n, two_n, q)


# -- the evaluator ----------------------------------------------------------------


class FunctionalEvaluator:
    """Evaluate arbitrary real functions through the TFHE LUT path.

    A thin shell over :class:`~repro.switching.pipeline.BootstrapPipeline`:
    construction picks the executor and engines exactly like the
    scheme-switching bootstrap does (``executor=None`` builds the local
    in-process fan-out on ``blind_rotate_engine``; pass a cluster or
    process-pool executor for distributed PBS), and :meth:`evaluate` is
    ``pipeline.run_pbs``.  LUTs are built once per
    ``(function, N, q, Delta)`` and cached on the key set's
    :class:`~repro.switching.luts.LutRegistry`.
    """

    def __init__(self, ctx: CkksContext, keys: SwitchingKeySet,
                 executor: Optional[Executor] = None,
                 blind_rotate_engine: str = "vectorized",
                 repack_engine: str = "vectorized",
                 extract_engine: str = "vectorized"):
        self.ctx = ctx
        self.keys = keys
        self.raised_basis = keys.raised_basis
        self.extract_engine = extract_engine
        self.pipeline = BootstrapPipeline(
            ctx, keys, executor=executor,
            blind_rotate_engine=blind_rotate_engine,
            repack_engine=repack_engine)

    @property
    def repack_engine(self) -> str:
        return self.pipeline.repack_engine

    @property
    def blind_rotate_engine(self) -> str:
        return self.pipeline.blind_rotate_engine

    def max_abs_input(self) -> float:
        """Largest |v| the quantised phase can represent faithfully."""
        q = float(self.ctx.full_basis.moduli[0])
        return q / (4.0 * self.ctx.params.scale)

    def quantisation_step(self) -> float:
        """Input resolution: one phase bucket in value units."""
        q = float(self.ctx.full_basis.moduli[0])
        return q / (2.0 * self.ctx.n * self.ctx.params.scale)

    def evaluate(self, ct: CkksCiphertext, f: Callable[[float], float],
                 trace: Optional[BootstrapTrace] = None) -> CkksCiphertext:
        """Apply ``f`` element-wise to a *level-0*, coefficient-packed
        CKKS ciphertext.

        Returns a fresh top-level coefficient-packed ciphertext of
        ``f(values)`` — the LUT evaluation refreshes noise as a side
        effect (it *is* a programmable bootstrap).  ``f`` may be a plain
        callable, a :class:`~repro.switching.luts.LutSpec`, or a
        registered workload name (``"sign"``, ``"relu"``, ...).
        """
        if ct.level != 0:
            raise ParameterError(
                "functional evaluation consumes a level-0 ciphertext "
                "(drop_to_level first)")
        return self.pipeline.run_pbs(ct, f, trace=trace,
                                     extract_engine=self.extract_engine)
