"""Fixture-driven tests for heaplint (``repro.lint``).

Every rule gets three kinds of cases: offending source that must flag,
clean source that must not, and an offending line whose inline
suppression is honored.  A final smoke test runs the full rule set over
the real repository tree, which must be clean — that is the same
invariant the CI lint job enforces.
"""

from pathlib import Path

from repro.lint import (
    BAD_SUPPRESSION_CODE,
    Baseline,
    all_rules,
    analyze_paths,
    analyze_source,
)
from repro.lint.__main__ import main as lint_main

HOT_PATH = "src/repro/math/ntt.py"
COLD_PATH = "src/repro/analysis/tables.py"


def codes(findings):
    return [f.rule for f in findings]


class TestRuleCatalogue:
    def test_nine_rules_registered(self):
        rules = all_rules()
        assert [r.code for r in rules] == [
            "HL001", "HL002", "HL003", "HL004", "HL005",
            "HL101", "HL102", "HL103", "HL104"]

    def test_descriptions_nonempty(self):
        assert all(r.description and r.name for r in all_rules())


class TestHl001ObjectDtype:
    def test_flags_dtype_object_in_hot_path(self):
        src = "import numpy as np\n\nacc = np.zeros(8, dtype=object)\n"
        assert codes(analyze_source(src, HOT_PATH)) == ["HL001"]

    def test_flags_astype_object_in_hot_path(self):
        src = "def widen(x):\n    return x.astype(object)\n"
        assert codes(analyze_source(src, HOT_PATH)) == ["HL001"]

    def test_clean_outside_hot_path(self):
        src = "import numpy as np\n\nacc = np.zeros(8, dtype=object)\n"
        assert analyze_source(src, COLD_PATH) == []

    def test_clean_fixed_width_dtype(self):
        src = "import numpy as np\n\nacc = np.zeros(8, dtype=np.int64)\n"
        assert analyze_source(src, HOT_PATH) == []

    def test_suppression_honored(self):
        src = ("import numpy as np\n\n"
               "acc = np.zeros(8, dtype=object)"
               "  # heaplint: disable=HL001 exact big-int reference table\n")
        assert analyze_source(src, HOT_PATH) == []


class TestHl002LazyBound:
    FLAG = ("import numpy as np\n\n"
            "def drain(acc, g):\n"
            "    out = acc.view(np.uint64) * g.view(np.uint64)\n"
            "    return out\n")

    def test_flags_unproven_deferred_reduction(self):
        assert codes(analyze_source(self.FLAG, COLD_PATH)) == ["HL002"]

    def test_flags_lazy_helper_without_proof(self):
        src = ("def drain(eng, a, b):\n"
               "    return eng.lazy_mac_sum(a, b, axis=1)\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL002"]

    def test_one_finding_per_function(self):
        src = ("import numpy as np\n\n"
               "def drain(acc, g):\n"
               "    a = acc.view(np.uint64) * g.view(np.uint64)\n"
               "    b = acc.view(np.uint64) + g.view(np.uint64)\n"
               "    return a + b\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL002"]

    def test_bound_guard_discharges(self):
        src = ("import numpy as np\n\n"
               "def drain(acc, g, rows, q):\n"
               "    assert (rows + 2) * (q - 1) ** 2 <= (1 << 64) - 1\n"
               "    return acc.view(np.uint64) * g.view(np.uint64)\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_named_u64_constant_discharges(self):
        src = ("import numpy as np\n\n"
               "_U64_MAX = (1 << 64) - 1\n\n"
               "def drain(acc, g, bound):\n"
               "    if bound > _U64_MAX:\n"
               "        raise ValueError('overflow')\n"
               "    return acc.view(np.uint64) * g.view(np.uint64)\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_lazy_bound_annotation_discharges(self):
        src = ("import numpy as np\n\n"
               "def drain(acc, g):\n"
               "    # lazy-bound: (rows + 2) * (q-1)^2 checked in __init__\n"
               "    return acc.view(np.uint64) * g.view(np.uint64)\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_plain_arithmetic_clean(self):
        src = ("def drain(acc, g):\n"
               "    return acc * g\n")
        assert analyze_source(src, COLD_PATH) == []


class TestHl003NttDomain:
    def test_flags_eval_coeff_mix(self):
        src = ("def f(ntt, a, b):\n"
               "    ae = ntt.forward(a)\n"
               "    bc = ntt.inverse(b)\n"
               "    return ae * bc\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL003"]

    def test_flags_mix_through_helper_call(self):
        src = ("def f(eng, ntt, a, b):\n"
               "    ae = ntt.forward_axis0(a)\n"
               "    bc = ntt.inverse_axis0(b)\n"
               "    return eng.mul(ae, bc)\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL003"]

    def test_same_domain_clean(self):
        src = ("def f(ntt, a, b):\n"
               "    ae = ntt.forward(a)\n"
               "    be = ntt.forward(b)\n"
               "    return ae * be\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_tags_flow_into_loop_bodies(self):
        src = ("def f(ntt, a, b, n):\n"
               "    ae = ntt.forward(a)\n"
               "    for _ in range(n):\n"
               "        bc = ntt.inverse(b)\n"
               "        ae = ae + bc\n"
               "    return ae\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL003"]

    def test_reassignment_clears_tag(self):
        src = ("def f(ntt, a, b):\n"
               "    ae = ntt.forward(a)\n"
               "    ae = b\n"
               "    bc = ntt.inverse(b)\n"
               "    return ae + bc\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_suppression_honored(self):
        src = ("def f(ntt, a, b):\n"
               "    ae = ntt.forward(a)\n"
               "    bc = ntt.inverse(b)\n"
               "    # heaplint: disable=HL003 negacyclic twist, domains ok\n"
               "    return ae * bc\n")
        assert analyze_source(src, COLD_PATH) == []


class TestHl004SecretHygiene:
    def test_flags_fstring_payload_leak(self):
        src = ("def debug(sk):\n"
               "    return f'key={sk.coeffs}'\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL004"]

    def test_flags_exception_message_leak(self):
        src = ("def check(secret_key):\n"
               "    raise ValueError(f'bad key {secret_key}')\n")
        # Both the f-string and the exception-message sink fire here.
        found = codes(analyze_source(src, COLD_PATH))
        assert found and set(found) == {"HL004"}

    def test_flags_logging_leak(self):
        src = ("import logging\n\n"
               "def trace(sk):\n"
               "    logging.debug('key=%s', sk.coeffs)\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL004"]

    def test_structural_attrs_clean(self):
        src = ("def debug(sk):\n"
               "    return f'dim={sk.dim} n={sk.n}'\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_non_secret_values_clean(self):
        src = ("def debug(ciphertext):\n"
               "    return f'ct={ciphertext.body}'\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_flags_secret_dataclass_without_repr(self):
        src = ("from dataclasses import dataclass\n\n"
               "@dataclass\n"
               "class LweSecretKey:\n"
               "    coeffs: object\n"
               "    dim: int\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL004"]

    def test_secret_dataclass_with_repr_clean(self):
        src = ("from dataclasses import dataclass\n\n"
               "@dataclass\n"
               "class LweSecretKey:\n"
               "    coeffs: object\n"
               "    dim: int\n\n"
               "    def __repr__(self):\n"
               "        return f'LweSecretKey(dim={self.dim})'\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_suppression_honored(self):
        src = ("def debug(sk):\n"
               "    # heaplint: disable=HL004 test vector, not a real key\n"
               "    return f'key={sk.coeffs}'\n")
        assert analyze_source(src, COLD_PATH) == []


class TestHl004SeedHygiene:
    """Key seeds reconstruct the full key from the stored b-halves, so
    HL004 treats them exactly like secret-key coefficients."""

    def test_flags_mask_seed_fstring_leak(self):
        src = ("def debug(mask_seed):\n"
               "    return f'seed={mask_seed}'\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL004"]

    def test_flags_derive_seed_result_in_exception(self):
        src = ("from repro.math.sampling import derive_seed\n\n"
               "def gen(master, i):\n"
               "    s = derive_seed(master, 'brk', i)\n"
               "    raise ValueError('bad seed %d' % s)\n")
        found = codes(analyze_source(src, COLD_PATH))
        assert found and set(found) == {"HL004"}

    def test_flags_key_seed_logging_leak(self):
        src = ("import logging\n\n"
               "def trace(key_seed):\n"
               "    logging.info('expanding %s', key_seed)\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL004"]

    def test_plain_seed_name_clean(self):
        # Samplers take public seeds everywhere; only key-scoped seed
        # names are secrets.
        src = ("def run(seed):\n"
               "    return f'run with seed={seed}'\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_flags_seed_field_dataclass_without_redaction(self):
        src = ("from dataclasses import dataclass\n\n"
               "@dataclass\n"
               "class SwitchingMaterial:\n"
               "    bodies: object\n"
               "    key_seed: int = 0\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL004"]

    def test_seed_field_with_repr_false_clean(self):
        src = ("from dataclasses import dataclass, field\n\n"
               "@dataclass\n"
               "class SwitchingMaterial:\n"
               "    bodies: object\n"
               "    key_seed: int = field(default=0, repr=False)\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_seed_dataclass_with_custom_repr_clean(self):
        src = ("from dataclasses import dataclass\n\n"
               "@dataclass\n"
               "class SwitchingMaterial:\n"
               "    key_seed: int = 0\n\n"
               "    def __repr__(self):\n"
               "        return 'SwitchingMaterial(<redacted>)'\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_seed_suppression_honored(self):
        src = ("def debug(mask_seed):\n"
               "    # heaplint: disable=HL004 fixture seed, not a real key\n"
               "    return f'seed={mask_seed}'\n")
        assert analyze_source(src, COLD_PATH) == []


class TestHl005ParamConstruction:
    def test_flags_non_power_of_two_n(self):
        src = ("from repro.params import CkksParams\n\n"
               "P = CkksParams(n=24, moduli=[97], special_moduli=[],"
               " scale_bits=10)\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL005"]

    def test_flags_non_ntt_friendly_modulus(self):
        # 97 % 128 != 1, so 97 has no 128th root of unity for N=64.
        src = ("from repro.params import CkksParams\n\n"
               "P = CkksParams(n=64, moduli=[97], special_moduli=[],"
               " scale_bits=10)\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL005"]

    def test_valid_literals_clean(self):
        # 257 = 2 * 128 + 1 is NTT-friendly for N=64.
        src = ("from repro.params import CkksParams\n\n"
               "P = CkksParams(n=64, moduli=[257], special_moduli=[],"
               " scale_bits=10)\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_non_literal_arguments_clean(self):
        src = ("from repro.params import TfheParams\n\n"
               "def build(n, primes):\n"
               "    return TfheParams(n_t=10, n=n, q=primes[0],"
               " aux_prime=primes[1])\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_params_module_itself_exempt(self):
        src = ("P = CkksParams(n=24, moduli=[97], special_moduli=[],"
               " scale_bits=10)\n")
        assert analyze_source(src, "src/repro/params.py") == []

    def test_suppression_honored(self):
        src = ("from repro.params import TfheParams\n\n"
               "import pytest\n\n"
               "def test_rejects():\n"
               "    with pytest.raises(ValueError):\n"
               "        TfheParams(n_t=10, n=24, q=97, aux_prime=193)"
               "  # heaplint: disable=HL005 intentionally invalid\n")
        assert analyze_source(src, COLD_PATH) == []


class TestHl101SharedMutableState:
    """Unlocked writes to module-level mutable state on concurrent paths
    — the PR-7 engine-cache race, reduced to fixtures."""

    UNLOCKED = (
        "import threading\n\n"
        "_CACHE = {}\n\n"
        "def get_engine(key):\n"
        "    eng = _CACHE.get(key)\n"
        "    if eng is None:\n"
        "        eng = object()\n"
        "        _CACHE[key] = eng\n"
        "    return eng\n\n"
        "def worker():\n"
        "    get_engine(1)\n\n"
        "def serve():\n"
        "    t = threading.Thread(target=worker)\n"
        "    t.start()\n")

    def test_flags_unlocked_cache_write_on_thread_path(self):
        found = analyze_source(self.UNLOCKED, COLD_PATH)
        assert codes(found) == ["HL101"]
        assert "_CACHE" in found[0].message
        assert "thread" in found[0].message

    def test_flags_write_reachable_from_async_entry(self):
        src = ("_STATS = {}\n\n"
               "def record(key):\n"
               "    _STATS[key] = _STATS.get(key, 0) + 1\n\n"
               "async def handle(request):\n"
               "    record(request)\n")
        found = analyze_source(src, COLD_PATH)
        assert codes(found) == ["HL101"]
        assert "async" in found[0].message

    def test_flags_mutator_method_call(self):
        src = ("import threading\n\n"
               "_LOG = []\n\n"
               "def worker():\n"
               "    _LOG.append(1)\n\n"
               "def serve():\n"
               "    threading.Thread(target=worker).start()\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL101"]

    def test_double_checked_lock_clean(self):
        src = ("import threading\n\n"
               "_CACHE = {}\n"
               "_LOCK = threading.Lock()\n\n"
               "def get_engine(key):\n"
               "    eng = _CACHE.get(key)\n"
               "    if eng is None:\n"
               "        with _LOCK:\n"
               "            eng = _CACHE.get(key)\n"
               "            if eng is None:\n"
               "                eng = object()\n"
               "                _CACHE[key] = eng\n"
               "    return eng\n\n"
               "def worker():\n"
               "    get_engine(1)\n\n"
               "def serve():\n"
               "    threading.Thread(target=worker).start()\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_unreachable_write_clean(self):
        """Same cache, but nothing threaded or async reaches it."""
        src = ("_CACHE = {}\n\n"
               "def get_engine(key):\n"
               "    eng = _CACHE.get(key)\n"
               "    if eng is None:\n"
               "        eng = object()\n"
               "        _CACHE[key] = eng\n"
               "    return eng\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_threadsafe_waiver_on_definition(self):
        src = ("import threading\n\n"
               "_STATS = {}  # heaplint: threadsafe append-only counters,"
               " torn reads acceptable\n\n"
               "def worker():\n"
               "    _STATS[1] = 1\n\n"
               "def serve():\n"
               "    threading.Thread(target=worker).start()\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_threadsafe_waiver_on_write_line(self):
        src = ("import threading\n\n"
               "_STATS = {}\n\n"
               "def worker():\n"
               "    # heaplint: threadsafe single writer, readers tolerate"
               " stale values\n"
               "    _STATS[1] = 1\n\n"
               "def serve():\n"
               "    threading.Thread(target=worker).start()\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_threadsafe_waiver_without_reason_reported(self):
        src = "_STATS = {}  # heaplint: threadsafe\n"
        assert codes(analyze_source(src, COLD_PATH)) == [BAD_SUPPRESSION_CODE]

    def test_disable_suppression_honored(self):
        src = ("import threading\n\n"
               "_CACHE = {}\n\n"
               "def worker():\n"
               "    _CACHE[1] = 1  # heaplint: disable=HL101 bench-only"
               " single thread\n\n"
               "def serve():\n"
               "    threading.Thread(target=worker).start()\n")
        assert analyze_source(src, COLD_PATH) == []


class TestHl102AsyncHygiene:
    def test_flags_time_sleep_in_async_def(self):
        src = ("import time\n\n"
               "async def poll():\n"
               "    time.sleep(0.1)\n")
        found = analyze_source(src, COLD_PATH)
        assert codes(found) == ["HL102"]
        assert "asyncio.sleep" in found[0].message

    def test_flags_pipe_recv_in_async_def(self):
        src = ("async def pump(conn):\n"
               "    return conn.recv()\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL102"]

    def test_flags_direct_fanout_in_async_def(self):
        src = ("async def run(executor, tasks):\n"
               "    return executor.fanout(tasks)\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL102"]

    def test_flags_sync_lock_across_await(self):
        src = ("import threading\n\n"
               "_LOCK = threading.Lock()\n\n"
               "async def handle(queue):\n"
               "    with _LOCK:\n"
               "        item = await queue.get()\n"
               "    return item\n")
        found = analyze_source(src, COLD_PATH)
        assert codes(found) == ["HL102"]
        assert "asyncio.Lock" in found[0].message

    def test_flags_never_awaited_coroutine(self):
        src = ("async def flush():\n"
               "    pass\n\n"
               "def shutdown():\n"
               "    flush()\n")
        found = analyze_source(src, COLD_PATH)
        assert codes(found) == ["HL102"]
        assert "never awaited" in found[0].message

    def test_asyncio_sleep_clean(self):
        src = ("import asyncio\n\n"
               "async def poll():\n"
               "    await asyncio.sleep(0.1)\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_async_with_asyncio_lock_clean(self):
        src = ("async def handle(entry, queue):\n"
               "    async with entry.lock:\n"
               "        item = await queue.get()\n"
               "    return item\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_blocking_call_in_nested_sync_def_clean(self):
        """A sync helper defined inside a coroutine runs wherever it is
        called (e.g. shipped to a worker thread) — not on the loop."""
        src = ("import time\n\n"
               "import asyncio\n\n"
               "async def run():\n"
               "    def blocking():\n"
               "        time.sleep(1)\n"
               "        return 3\n"
               "    return await asyncio.to_thread(blocking)\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_create_task_not_flagged_as_dropped(self):
        src = ("import asyncio\n\n"
               "async def flush():\n"
               "    pass\n\n"
               "def kick(loop):\n"
               "    asyncio.create_task(flush())\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_method_start_on_foreign_object_clean(self):
        """`proc.start()` must not match an unrelated `async def start`
        elsewhere (Process.start vs a service's coroutine)."""
        src = ("from multiprocessing import Process\n\n"
               "class Service:\n"
               "    async def start(self):\n"
               "        pass\n\n"
               "def spawn(main):\n"
               "    proc = Process(target=main)\n"
               "    proc.start()\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_suppression_honored(self):
        src = ("import time\n\n"
               "async def poll():\n"
               "    time.sleep(0.1)  # heaplint: disable=HL102 startup"
               " probe, loop not yet serving\n")
        assert analyze_source(src, COLD_PATH) == []


class TestHl103ProcessPayload:
    def test_flags_lambda_process_target(self):
        src = ("from multiprocessing import Process\n\n"
               "def spawn():\n"
               "    return Process(target=lambda: None)\n")
        found = analyze_source(src, COLD_PATH)
        assert codes(found) == ["HL103"]
        assert "lambda" in found[0].message

    def test_flags_nested_function_target(self):
        src = ("from multiprocessing import Process\n\n"
               "def spawn(manifest):\n"
               "    def helper():\n"
               "        return manifest\n"
               "    return Process(target=helper)\n")
        found = analyze_source(src, COLD_PATH)
        assert codes(found) == ["HL103"]
        assert "closure" in found[0].message

    def test_flags_open_handle_in_args(self):
        src = ("from multiprocessing import Process\n\n"
               "def spawn(main, path):\n"
               "    fh = open(path)\n"
               "    return Process(target=main, args=(fh, 3))\n")
        found = analyze_source(src, COLD_PATH)
        assert codes(found) == ["HL103"]
        assert "file handle" in found[0].message

    def test_flags_object_dtype_publish(self):
        src = ("import numpy as np\n\n"
               "def publish(publish_fn):\n"
               "    wide = np.empty(4, dtype=object)\n"
               "    return publish_shared_arrays({'key': wide})\n")
        found = analyze_source(src, COLD_PATH)
        assert codes(found) == ["HL103"]
        assert "object-dtype" in found[0].message

    def test_flags_lambda_over_connection(self):
        src = ("def reply(conn):\n"
               "    handler = lambda x: x\n"
               "    conn.send(handler)\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL103"]

    def test_module_level_target_and_plain_data_clean(self):
        src = ("from multiprocessing import Process\n\n"
               "def worker_main(conn, wid, manifest):\n"
               "    pass\n\n"
               "def spawn(conn, manifest):\n"
               "    return Process(target=worker_main,"
               " args=(conn, 0, manifest))\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_builtin_map_with_lambda_clean(self):
        """Plain builtin map is in-process; only pool.map crosses."""
        src = ("def scale(xs):\n"
               "    return list(map(lambda x: 2 * x, xs))\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_pool_map_with_lambda_flagged(self):
        src = ("def fan(pool, xs):\n"
               "    return pool.map(lambda x: 2 * x, xs)\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL103"]

    def test_suppression_honored(self):
        src = ("from multiprocessing import Process\n\n"
               "def spawn():\n"
               "    return Process(target=lambda: None)"
               "  # heaplint: disable=HL103 fork-only test helper\n")
        assert analyze_source(src, COLD_PATH) == []


class TestHl104SharedArrayAliasing:
    def test_flags_subscript_write_into_attached_view(self):
        src = ("def worker(manifest):\n"
               "    block, views = attach_shared_arrays(manifest)\n"
               "    views['key'][0] = 1\n")
        found = analyze_source(src, COLD_PATH)
        assert codes(found) == ["HL104"]
        assert "attach_shared_arrays" in found[0].message

    def test_flags_write_through_alias(self):
        src = ("def worker(manifest):\n"
               "    block, views = attach_shared_arrays(manifest)\n"
               "    key = views['key']\n"
               "    key[0, 0] = 7\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL104"]

    def test_flags_augmented_assignment(self):
        src = ("def worker(manifest):\n"
               "    block, views = attach_shared_arrays(manifest)\n"
               "    tv = views['tv']\n"
               "    tv += 1\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL104"]

    def test_flags_out_kwarg(self):
        src = ("import numpy as np\n\n"
               "def worker(manifest, a, b):\n"
               "    block, views = attach_shared_arrays(manifest)\n"
               "    v = views['key']\n"
               "    np.add(a, b, out=v)\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL104"]

    def test_flags_loop_variable_write(self):
        src = ("def worker(manifest):\n"
               "    block, views = attach_shared_arrays(manifest)\n"
               "    for v in views:\n"
               "        v[0] = 0\n")
        assert codes(analyze_source(src, COLD_PATH)) == ["HL104"]

    def test_setflags_freeze_discharges(self):
        """Per the rule contract, a view explicitly frozen read-only is
        no longer an aliasing hazard (the write would raise loudly)."""
        src = ("def worker(manifest):\n"
               "    block, views = attach_shared_arrays(manifest)\n"
               "    v = views['key']\n"
               "    v.setflags(write=False)\n"
               "    v[0] = 1\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_copy_then_write_clean(self):
        src = ("def worker(manifest):\n"
               "    block, views = attach_shared_arrays(manifest)\n"
               "    scratch = views['key'].copy()\n"
               "    scratch[0] = 1\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_reads_clean(self):
        src = ("def worker(manifest):\n"
               "    block, views = attach_shared_arrays(manifest)\n"
               "    total = views['key'].sum() + views['tv'][0]\n"
               "    return total\n")
        assert analyze_source(src, COLD_PATH) == []

    def test_suppression_honored(self):
        src = ("def worker(manifest):\n"
               "    block, views = attach_shared_arrays(manifest)\n"
               "    views['scratch'][0] = 1  # heaplint: disable=HL104"
               " worker-owned scratch protocol\n")
        assert analyze_source(src, COLD_PATH) == []


class TestSuppressionSyntax:
    def test_standalone_comment_covers_next_code_line(self):
        src = ("import numpy as np\n\n"
               "# heaplint: disable=HL001 exact reference path\n"
               "acc = np.zeros(8, dtype=object)\n")
        assert analyze_source(src, HOT_PATH) == []

    def test_missing_reason_is_reported(self):
        src = ("import numpy as np\n\n"
               "acc = np.zeros(8, dtype=object)  # heaplint: disable=HL001\n")
        found = analyze_source(src, HOT_PATH)
        assert BAD_SUPPRESSION_CODE in codes(found)
        # The unsuppressed HL001 finding survives too.
        assert "HL001" in codes(found)

    def test_wrong_code_does_not_suppress(self):
        src = ("import numpy as np\n\n"
               "acc = np.zeros(8, dtype=object)"
               "  # heaplint: disable=HL005 wrong code entirely\n")
        assert "HL001" in codes(analyze_source(src, HOT_PATH))

    def test_multi_code_suppression(self):
        src = ("import numpy as np\n\n"
               "def f(ntt, a, b):\n"
               "    ae = ntt.forward(a)\n"
               "    bc = ntt.inverse(b)\n"
               "    out = np.asarray(ae * bc, dtype=object)"
               "  # heaplint: disable=HL001,HL003 composed reference\n"
               "    return out\n")
        assert analyze_source(src, HOT_PATH) == []

    def test_syntax_error_reported_not_raised(self):
        found = analyze_source("def broken(:\n", COLD_PATH)
        assert codes(found) == [BAD_SUPPRESSION_CODE]


class TestBaseline:
    SRC = ("import numpy as np\n\n"
           "a = np.zeros(8, dtype=object)\n"
           "b = np.zeros(8, dtype=object)\n")

    def test_fingerprint_ignores_line_numbers(self):
        one = analyze_source("import numpy as np\n\n"
                             "a = np.zeros(8, dtype=object)\n", HOT_PATH)
        two = analyze_source("import numpy as np\n\n\n\n"
                             "a = np.zeros(8, dtype=object)\n", HOT_PATH)
        assert one[0].fingerprint() == two[0].fingerprint()
        assert one[0].line != two[0].line

    def test_filter_new_subtracts_counts(self, tmp_path):
        findings = analyze_source(self.SRC, HOT_PATH)
        assert len(findings) == 2
        path = tmp_path / "baseline.json"
        Baseline.dump(findings, path)
        assert Baseline.load(path).filter_new(findings) == []

    def test_extra_identical_offence_still_fails(self, tmp_path):
        findings = analyze_source(self.SRC, HOT_PATH)
        path = tmp_path / "baseline.json"
        Baseline.dump(findings[:1], path)
        fresh = Baseline.load(path).filter_new(findings)
        # a=... is baselined; b=... has a different snippet, so it stays.
        assert len(fresh) == 1


class TestCli:
    BAD = ("from repro.params import CkksParams\n\n"
           "P = CkksParams(n=24, moduli=[97], special_moduli=[],"
           " scale_bits=10)\n")

    def test_exit_1_on_new_finding(self, tmp_path, capsys):
        target = tmp_path / "bad_params.py"
        target.write_text(self.BAD)
        assert lint_main([str(target), "--no-baseline"]) == 1
        assert "HL005" in capsys.readouterr().out

    def test_update_then_pass_with_baseline(self, tmp_path, capsys):
        target = tmp_path / "bad_params.py"
        target.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(target), "--baseline", str(baseline),
                          "--update-baseline"]) == 0
        assert baseline.exists()
        assert lint_main([str(target), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_exit_2_on_missing_path(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope"), "--no-baseline"]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("HL001", "HL002", "HL003", "HL004", "HL005",
                     "HL101", "HL102", "HL103", "HL104"):
            assert code in out

    def test_sarif_output(self, tmp_path, capsys):
        import json

        target = tmp_path / "bad_params.py"
        target.write_text(self.BAD)
        assert lint_main([str(target), "--no-baseline",
                          "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "heaplint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"HL001", "HL101", "HL102", "HL103", "HL104"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "HL005"
        assert result["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"].endswith("bad_params.py")
        assert "heaplint/v1" in result["partialFingerprints"]

    def test_sarif_clean_tree_is_valid_empty_run(self, tmp_path, capsys):
        import json

        target = tmp_path / "fine.py"
        target.write_text("x = 1\n")
        assert lint_main([str(target), "--no-baseline",
                          "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


class TestRepoSmoke:
    def test_repository_tree_is_clean(self):
        """The shipped tree must carry zero unsuppressed findings — the
        CI lint job enforces exactly this (modulo the baseline, which is
        empty)."""
        root = Path(__file__).resolve().parents[1]
        findings = analyze_paths(
            [root / "src", root / "tests", root / "benchmarks"], root=root)
        assert findings == [], "\n".join(f.render() for f in findings)
