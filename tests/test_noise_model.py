"""Validate the noise model against measured pipeline runs."""


import numpy as np
import pytest

from repro.analysis.noise import (
    SwitchingNoiseModel,
    gaussian_tail,
    required_ring_dimension,
)
from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet


class TestGaussianTail:
    def test_known_values(self):
        assert gaussian_tail(0) == pytest.approx(1.0)
        assert gaussian_tail(1.96) == pytest.approx(0.05, abs=0.01)
        assert gaussian_tail(5) < 1e-6

    def test_monotone(self):
        xs = [0.5, 1.0, 2.0, 4.0]
        tails = [gaussian_tail(x) for x in xs]
        assert tails == sorted(tails, reverse=True)


class TestAliasingBound:
    def test_paper_parameters_are_safe(self):
        """At N = 2^13 / n_t = 500 the aliasing probability is negligible."""
        model = SwitchingNoiseModel(n=2**13, n_iter=500, gadget_base=2,
                                    gadget_digits=1, key_error_std=1.0)
        assert model.aliasing_failure_probability() < 2**-200

    def test_toy_parameters_are_safe_enough(self):
        model = SwitchingNoiseModel(n=16, n_iter=16, gadget_base=16,
                                    gadget_digits=28, key_error_std=0.8)
        assert model.aliasing_failure_probability() < 1e-2

    def test_required_ring_dimension(self):
        """n_t = 500 demands N >= ~128 for 2^-40 aliasing; the paper's
        2^13 has orders of magnitude of margin (its choice is driven by
        CKKS security/slots, not aliasing)."""
        n_req = required_ring_dimension(500)
        assert 64 <= n_req <= 1024
        assert n_req <= 2**13

    def test_tiny_ring_fails(self):
        model = SwitchingNoiseModel(n=4, n_iter=500, gadget_base=2,
                                    gadget_digits=1, key_error_std=1.0)
        assert model.aliasing_failure_probability() > 0.5


class TestNoisePrediction:
    def test_prediction_brackets_measurement(self):
        """Measured bootstrap slot error within ~100x of the 3-sigma
        prediction (heuristic average-case bound, order-of-magnitude
        standard)."""
        params = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                                 special_limbs=2)
        ctx = CkksContext(params.ckks, dnum=2)
        gen = CkksKeyGenerator(ctx, Sampler(301))
        sk = gen.secret_key()
        ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(302))
        base_bits = 4
        swk = SwitchingKeySet.generate(ctx, sk, Sampler(303),
                                       base_bits=base_bits, error_std=0.8)
        boot = SchemeSwitchBootstrapper(ctx, swk)
        z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
        out = boot.bootstrap(ev.encrypt(z, level=0))
        measured = float(np.max(np.abs(ev.decrypt(out, sk).real - z)))

        model = SwitchingNoiseModel(
            n=ctx.n, n_iter=ctx.n, gadget_base=1 << base_bits,
            gadget_digits=swk.gadget.digits, key_error_std=0.8)
        predicted = model.final_slot_error(ctx.params.scale)
        assert measured < predicted * 100
        assert measured > predicted / 1000

    def test_noise_grows_with_iterations(self):
        short = SwitchingNoiseModel(n=64, n_iter=16, gadget_base=16,
                                    gadget_digits=20, key_error_std=1.0)
        long = SwitchingNoiseModel(n=64, n_iter=256, gadget_base=16,
                                   gadget_digits=20, key_error_std=1.0)
        assert long.blind_rotate_noise_std() > short.blind_rotate_noise_std()

    def test_noise_grows_with_base(self):
        fine = SwitchingNoiseModel(n=64, n_iter=64, gadget_base=4,
                                   gadget_digits=60, key_error_std=1.0)
        coarse = SwitchingNoiseModel(n=64, n_iter=64, gadget_base=256,
                                     gadget_digits=15, key_error_std=1.0)
        assert coarse.external_product_noise_std() > fine.external_product_noise_std()
