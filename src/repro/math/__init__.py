"""Mathematical substrate: modular arithmetic, NTT, rings, RNS, sampling."""

from .gadget import GadgetVector, exact_digits
from .modular import (
    BarrettConstant,
    ModulusEngine,
    barrett_precompute,
    crt_compose,
    crt_decompose,
    find_ntt_primes,
    is_prime,
    primitive_root,
    root_of_unity,
)
from .ntt import NttEngine, get_ntt_engine, naive_dft, naive_negacyclic_mul
from .poly import RingPoly
from .rns import RnsBasis, RnsPoly, basis_convert, concat_bases
from .sampling import Sampler, DEFAULT_ERROR_STD

__all__ = [
    "BarrettConstant",
    "ModulusEngine",
    "barrett_precompute",
    "crt_compose",
    "crt_decompose",
    "find_ntt_primes",
    "is_prime",
    "primitive_root",
    "root_of_unity",
    "NttEngine",
    "get_ntt_engine",
    "naive_dft",
    "naive_negacyclic_mul",
    "RingPoly",
    "RnsBasis",
    "RnsPoly",
    "basis_convert",
    "concat_bases",
    "GadgetVector",
    "exact_digits",
    "Sampler",
    "DEFAULT_ERROR_STD",
]
