"""Tests for parameter-set construction and the paper's Section III-C
accounting."""

import pytest

from repro.errors import ParameterError
from repro.params import (
    CkksParams,
    TfheParams,
    make_conventional_params,
    make_heap_params,
    make_toy_params,
)
from repro.switching.keys import KeySizeAudit


class TestHeapParams:
    @pytest.fixture(scope="class")
    def heap(self):
        return make_heap_params()

    def test_ring_dimension(self, heap):
        assert heap.ckks.n == 1 << 13
        assert heap.tfhe.n == heap.ckks.n

    def test_log_q_matches_paper(self, heap):
        # Six 36-bit limbs -> logQ = 216.
        assert heap.ckks.log_q_total == 216
        assert len(heap.ckks.moduli) == 6
        assert all(q.bit_length() == 36 for q in heap.ckks.moduli)

    def test_levels(self, heap):
        # "L = 6, implying we can perform 5 multiplications".
        assert heap.ckks.levels == 5

    def test_slots(self, heap):
        assert heap.ckks.slots == 4096

    def test_rlwe_ciphertext_size(self, heap):
        # Paper: 2 * 216 * 8192 bits ~ 0.44 MB.
        assert heap.ckks.ciphertext_bytes() == pytest.approx(0.44e6, rel=0.02)

    def test_lwe_ciphertext_size(self, heap):
        # Paper: ~2.3 KB with n_t = 500 and log q = 36.
        assert heap.tfhe.lwe_ciphertext_bytes == pytest.approx(2.3e3, rel=0.05)

    def test_rgsw_shape(self, heap):
        # (h+1)*d x (h+1) with h=1, d=2.
        assert heap.tfhe.rgsw_matrix_shape == (4, 2)

    def test_all_primes_ntt_friendly(self, heap):
        for q in list(heap.ckks.moduli) + list(heap.ckks.special_moduli):
            assert q % (2 * heap.ckks.n) == 1


class TestKeySizeAudit:
    def test_paper_numbers(self):
        heap = make_heap_params()
        audit = KeySizeAudit.from_params(heap.tfhe, heap.ckks.log_q_total)
        assert audit.rlwe_ciphertext_bytes == pytest.approx(0.44e6, rel=0.02)
        assert audit.lwe_ciphertext_bytes == pytest.approx(2.3e3, rel=0.05)
        assert audit.rgsw_key_bytes == pytest.approx(3.52e6, rel=0.02)
        assert audit.total_brk_bytes == pytest.approx(1.76e9, rel=0.02)


class TestConventionalParams:
    def test_structure(self):
        p = make_conventional_params()
        assert p.n == 1 << 16
        assert p.max_limbs == 24


class TestToyParams:
    def test_structure_preserved(self):
        p = make_toy_params(n=32, limbs=5, special_limbs=3)
        assert p.ckks.n == 32
        assert p.ckks.max_limbs == 5
        assert len(p.ckks.special_moduli) == 3
        assert p.tfhe.q == p.ckks.moduli[0]

    def test_basis_prefixing(self):
        p = make_toy_params()
        b = p.ckks.basis(level=1)
        assert b.moduli == p.ckks.moduli[:2]

    def test_invalid_level_rejected(self):
        p = make_toy_params()
        with pytest.raises(ParameterError):
            p.ckks.basis(level=99)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ParameterError):
            CkksParams(n=24, moduli=[97], special_moduli=[193], scale_bits=10)  # heaplint: disable=HL005 intentionally invalid: asserts the constructor rejects it

    def test_tfhe_requires_power_of_two(self):
        with pytest.raises(ParameterError):
            TfheParams(n_t=10, n=24, q=97, aux_prime=193)  # heaplint: disable=HL005 intentionally invalid: asserts the constructor rejects it
