"""Tests for the n_t-dimension (LWE-keyswitched) bootstrap pipeline."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import ParameterError
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching import BootstrapTrace
from repro.switching.keyswitched import (
    KeySwitchedBootstrapper,
    KeySwitchedKeySet,
    make_keyswitched_toy_params,
)

N = 16
N_T = 8
PARAMS = make_keyswitched_toy_params(n=N, limbs=3, limb_bits=30,
                                     scale_bits=23, special_limbs=2)


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(201))
    sk = gen.secret_key()
    keys = gen.keyset(sk)
    ev = CkksEvaluator(ctx, keys, Sampler(202))
    kwk = KeySwitchedKeySet.generate(ctx, sk, n_t=N_T, sampler=Sampler(203),
                                     base_bits=4, error_std=0.6)
    boot = KeySwitchedBootstrapper(ctx, kwk)
    return ctx, sk, ev, boot


class TestParams:
    def test_strong_prime_congruence(self):
        p = PARAMS.special_moduli[0]
        assert (p - 1) % (2 * N * N) == 0

    def test_primes_distinct(self):
        all_primes = list(PARAMS.moduli) + list(PARAMS.special_moduli)
        assert len(set(all_primes)) == len(all_primes)


class TestKeySet:
    def test_brk_has_nt_entries(self, stack):
        ctx, sk, ev, boot = stack
        # The whole point: the blind-rotate key has n_t entries, not N.
        assert boot.keys.brk.n_t == N_T

    def test_nt_cannot_exceed_ring(self, stack):
        ctx, sk, ev, boot = stack
        with pytest.raises(ParameterError):
            KeySwitchedKeySet.generate(ctx, sk, n_t=ctx.n + 1)

    def test_requires_strong_prime(self):
        weak = make_toy_params(n=N, limbs=3, limb_bits=30, scale_bits=23,
                               special_limbs=2)
        ctx = CkksContext(weak.ckks, dnum=2)
        sk = CkksKeyGenerator(ctx, Sampler(1)).secret_key()
        if (ctx.special_basis.moduli[0] - 1) % (2 * N * N) == 0:
            pytest.skip("weak params happen to satisfy the congruence")
        with pytest.raises(ParameterError):
            KeySwitchedKeySet.generate(ctx, sk, n_t=N_T)

    def test_key_size_advantage(self, stack):
        """brk shrinks by ~N/n_t vs the direct pipeline (the paper's
        500-entry key vs a dimension-N key)."""
        ctx, sk, ev, boot = stack
        from repro.switching import SwitchingKeySet
        direct = SwitchingKeySet.generate(ctx, sk, Sampler(9), base_bits=4)
        assert boot.keys.brk.size_bytes() * (N // N_T) == pytest.approx(
            direct.brk.size_bytes(), rel=0.01)


class TestBootstrap:
    def test_refreshes_and_decrypts(self, stack):
        ctx, sk, ev, boot = stack
        z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=0)
        out = boot.bootstrap(ct)
        assert out.level == ctx.max_level
        got = ev.decrypt(out, sk)
        # The extra LWE key switch adds noise; keep a looser bound than
        # the direct pipeline.
        assert np.allclose(got.real, z, atol=0.15), np.max(np.abs(got.real - z))

    def test_trace(self, stack):
        ctx, sk, ev, boot = stack
        trace = BootstrapTrace()
        boot.bootstrap(ev.encrypt(0.2, level=0), trace)
        assert trace.num_lwe == ctx.n
        assert trace.num_blind_rotates == ctx.n
        # Two full packs (kq + companion) at n - 1 keyswitches each, plus
        # one ring key switch.
        assert trace.repack_merge_keyswitches == 2 * (ctx.n - 1)
        assert trace.repack_trace_keyswitches == 0
        assert trace.repack_keyswitches == 2 * (ctx.n - 1) + 1

    def test_blind_rotate_iterations_shrink(self, stack):
        """Each BlindRotate now runs n_t (not N) iterations; measured via
        the LWE dimension of the switched ciphertexts."""
        ctx, sk, ev, boot = stack
        ct = ev.encrypt(0.1, level=0)
        big = boot._extract_all(ct, ct.basis.moduli[0])
        assert all(lwe.dim == ctx.n for lwe in big)
        from repro.tfhe.lwe import lwe_keyswitch
        small = lwe_keyswitch(big[0], boot.keys.lwe_ksk)
        assert small.dim == N_T

    def test_rejects_non_level0(self, stack):
        ctx, sk, ev, boot = stack
        with pytest.raises(ParameterError):
            boot.bootstrap(ev.encrypt(0.1))

    def test_multiplication_after_refresh(self, stack):
        ctx, sk, ev, boot = stack
        z = np.random.default_rng(1).uniform(0.3, 0.8, ctx.slots)
        out = boot.bootstrap(ev.encrypt(z, level=0))
        prod = ev.mul_relin_rescale(
            out, ev.encrypt(z, level=out.level, scale=out.scale))
        got = ev.decrypt(prod, sk).real
        assert np.allclose(got, z * z, atol=0.3)
