"""Programmable-bootstrap LUT registry and workload library.

The fan-out stack used to hard-code ONE blind-rotate test vector — the
Algorithm-2 ``g(t) = q*t`` LUT — at executor construction, which is why
the functional (programmable-bootstrap) path had to fork around it.
This module generalises the "build once per ``(n, q)`` and share"
caching that :meth:`~repro.switching.keys.SwitchingKeySet.test_vector`
provided for that single LUT into a registry of *named* LUTs:

* :class:`LutSpec` names a real function ``f`` so that its built test
  vectors can be cached and referenced across executors by a stable
  string id (the ``lut`` parameter of ``Executor.fanout``);
* :class:`LutRegistry` owns the build cache — one per key set, living on
  ``SwitchingKeySet.luts`` / ``StreamingSwitchingKeys.luts`` — with the
  double-checked locking the ``BootstrapService`` thread pool requires
  (requests resolve LUTs from ``asyncio.to_thread`` workers) and
  hit/miss counters surfaced through :mod:`repro.profiling`;
* the workload library at the bottom is the "functionally complete TFHE
  processor" op catalogue the ROADMAP targets: sign, threshold
  comparison, ReLU, and k-bit quantised activations.

LUT math (shared with the docstring of
:mod:`repro.switching.functional`): bucket ``t`` of the test vector
holds ``p * Delta * f(t_signed * q / (2N * Delta)) * N^{-1} mod Qp``,
anti-periodically symmetrised (``g(t + N) = -g(t)`` — the negacyclic
ring forces it).  The faithful input domain is ``|v| < q / (4 Delta)``;
for odd ``f`` the symmetrisation agrees with ``f`` at the domain edge,
for other functions the edge bucket holds the anti-periodic image (the
"clamp").  :func:`functional_lut_g` exposes the bucket map over plain
integers so the Hypothesis property tests can check those statements
without building ring elements.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Union

from ..errors import ParameterError
from ..math.rns import RnsBasis, RnsPoly
from ..profiling import record_lut_cache
from ..tfhe.blind_rotate import build_test_vector

#: A real function evaluated per coefficient by the programmable bootstrap.
LutFn = Callable[[float], float]


@dataclass(frozen=True)
class LutSpec:
    """A named programmable-bootstrap function.

    The ``name`` is the cache identity: two specs with the same name are
    the same LUT as far as the registry's built-tensor cache and the
    executors' wire/shared-memory caches are concerned (the registry
    rejects re-use of a name with a different function object, so the
    identity cannot silently alias).  Equality/hashing follow the name
    alone — the function is not comparable.
    """

    name: str
    fn: LutFn = field(compare=False)

    def __post_init__(self) -> None:
        if not self.name or "@" in self.name:
            raise ParameterError(
                f"LUT name {self.name!r} must be non-empty and free of '@' "
                f"(reserved for the lut-id encoding)")
        if not callable(self.fn):
            raise ParameterError(f"LUT {self.name!r}: fn must be callable")


def functional_lut_g(fn: LutFn, n: int, q: int, delta: float, p: int,
                     big_qp: int) -> Callable[[int], int]:
    """The bucket map ``t -> g(t)`` over plain integers.

    ``g`` holds ``p * Delta * f(t_signed * step) * N^{-1} mod Qp`` on the
    faithful buckets (``t in [0, N/2)`` for positive inputs, ``t in
    [3N/2, 2N)`` for negative ones) and the anti-periodic image
    ``-g(t - N)`` on the middle — exact for odd functions, a clamp at
    the domain edge otherwise.  Exposed separately from the ring-element
    builder so LUT math is property-testable on integers alone.
    """
    two_n = 2 * n
    n_inv = pow(n, -1, big_qp)
    step = float(q) / (two_n * delta)

    def value(t_signed: int) -> int:
        v = fn(t_signed * step)
        return int(round(v * delta)) * p

    def g(t: int) -> int:
        t = t % two_n
        # Faithful range: t in [0, N/2) -> positive inputs,
        # t in (3N/2, 2N) -> negative inputs; the middle is the
        # anti-periodic image.
        if t < n // 2:
            val = value(t)
        elif t < n:
            val = -value(t - n)          # forced by anti-periodicity
        elif t < 3 * n // 2:
            val = -value(t - n)
        else:
            val = value(t - two_n)
        return (val * n_inv) % big_qp

    return g


def build_functional_lut(fn: LutFn, n: int, q: int, delta: float,
                         raised: RnsBasis) -> RnsPoly:
    """Build the blind-rotate test vector for ``fn`` over the raised
    basis (one N-point NTT per limb — exactly why the registry caches
    the result)."""
    p = raised.moduli[-1]
    g = functional_lut_g(fn, n, q, delta, p, raised.product)
    return build_test_vector(g, n, raised)


#: The Algorithm-2 switching vector's reserved LUT name.
ALGORITHM2 = "algorithm2"


class LutRegistry:
    """Thread-safe cache of built LUT test vectors for one key set.

    The cache key is a string ``lut_id`` that pins everything the built
    tensor depends on: the spec name, the ring degree, the level-0
    modulus, and (for functional LUTs) the CKKS scale.  Executors carry
    only this id across process/wire boundaries; :meth:`vector` is the
    primary-side lookup they serialize/publish from.

    Reads are lock-free on the hit path and re-checked under the lock on
    the miss path (the HL101 double-checked idiom, same as
    ``get_monomial_cache``): the registry is reached concurrently from
    ``BootstrapService``'s ``asyncio.to_thread`` batch workers, and an
    unlocked check-then-act here would build the same N-point-NTT tensor
    twice — or publish two distinct objects for one id.
    """

    def __init__(self, raised_basis: RnsBasis):
        self.raised_basis = raised_basis
        self._lock = threading.Lock()
        #: lut_id -> built test vector (the one shared, immutable copy).
        self._built: Dict[str, RnsPoly] = {}
        #: name -> spec, to reject one name aliasing two functions.
        self._specs: Dict[str, LutSpec] = {}
        #: id(fn) -> auto-named spec for bare callables.
        self._adhoc: Dict[int, LutSpec] = {}
        self._adhoc_counter = 0

    # -- spec resolution -----------------------------------------------------

    def spec_for(self, f: Union[LutSpec, LutFn, str]) -> LutSpec:
        """Normalise a LUT argument — a :class:`LutSpec`, a bare
        callable, or the name of a previously-seen spec — to a spec.

        Bare callables get a stable auto-generated name per function
        *object*, so repeated ``evaluate(ct, relu_fn)`` calls hit the
        same cache entry."""
        if isinstance(f, LutSpec):
            with self._lock:
                existing = self._specs.get(f.name)
                if existing is not None and existing.fn is not f.fn:
                    raise ParameterError(
                        f"LUT name {f.name!r} is already registered with a "
                        f"different function — one name, one LUT")
                self._specs[f.name] = f
            return f
        if isinstance(f, str):
            spec = self._specs.get(f) or WORKLOADS.get(f)
            if spec is None:
                raise ParameterError(
                    f"unknown LUT name {f!r} — register a LutSpec first or "
                    f"use one of the workload library specs "
                    f"({sorted(WORKLOADS)})")
            return spec
        if not callable(f):
            raise ParameterError(
                f"expected a LutSpec, callable, or LUT name, got {type(f)!r}")
        spec = self._adhoc.get(id(f))
        if spec is not None and spec.fn is f:
            return spec
        with self._lock:
            spec = self._adhoc.get(id(f))
            # `is` re-check: id() values recycle once a function is
            # garbage-collected, and a stale entry would alias its LUT.
            if spec is None or spec.fn is not f:
                self._adhoc_counter += 1
                name = getattr(f, "__name__", "lambda")
                spec = LutSpec(name=f"fn{self._adhoc_counter}-{name}", fn=f)
                self._adhoc[id(f)] = spec
                self._specs[spec.name] = spec
            return spec

    # -- build cache ---------------------------------------------------------

    @staticmethod
    def lut_id(spec: LutSpec, n: int, q: int, delta: float) -> str:
        """The cache/wire identity of one built LUT tensor."""
        return f"{spec.name}@n{n}:q{q}:d{float(delta).hex()}"

    def resolve(self, f: Union[LutSpec, LutFn, str], n: int, q: int,
                delta: float) -> str:
        """Build (or fetch) the test vector for ``f`` at ``(n, q, delta)``
        and return its id; :meth:`vector` retrieves the tensor."""
        spec = self.spec_for(f)
        lut_id = self.lut_id(spec, n, q, delta)
        if self._built.get(lut_id) is None:        # lock-free hit path
            with self._lock:
                if self._built.get(lut_id) is None:  # re-check under lock
                    record_lut_cache(hit=False)
                    self._built[lut_id] = build_functional_lut(
                        spec.fn, n, q, delta, self.raised_basis)
                    return lut_id
        record_lut_cache(hit=True)
        return lut_id

    def switching_vector(self, n: int, q: int) -> RnsPoly:
        """The Algorithm-2 LUT (``g(t) = q*t`` folded with ``N^{-1}``) —
        the same build-once-per-``(n, q)`` contract
        ``SwitchingKeySet.test_vector`` always had, now served from the
        one registry both key-set classes delegate to."""
        lut_id = f"{ALGORITHM2}@n{n}:q{q}"
        poly = self._built.get(lut_id)             # lock-free hit path
        if poly is None:
            with self._lock:
                poly = self._built.get(lut_id)     # re-check under lock
                if poly is None:
                    # Imported lazily: pipeline imports this module's
                    # consumers, a top-level import would cycle.
                    from .pipeline import build_switching_test_vector

                    record_lut_cache(hit=False)
                    poly = build_switching_test_vector(n, q,
                                                       self.raised_basis)
                    self._built[lut_id] = poly
                    return poly
        record_lut_cache(hit=True)
        return poly

    def vector(self, lut_id: str) -> RnsPoly:
        """The built tensor for an id previously returned by
        :meth:`resolve` (executors look batches' LUTs up here)."""
        poly = self._built.get(lut_id)
        if poly is None:
            raise ParameterError(
                f"unknown LUT id {lut_id!r} — resolve() it on this "
                f"registry before dispatching")
        return poly

    def built_ids(self) -> list:
        """Ids of every tensor currently cached (diagnostics/tests)."""
        return sorted(self._built)


# -- the workload library ---------------------------------------------------------
#
# The "Towards a Functionally Complete and Parameterizable TFHE
# Processor" op catalogue: sign, comparison-with-constant, ReLU, and
# quantised activations.  All are LutSpecs so their built tensors cache
# and ship under stable names.


def sign_fn(x: float) -> float:
    return 1.0 if x > 0 else (-1.0 if x < 0 else 0.0)


def relu_fn(x: float) -> float:
    return x if x > 0 else 0.0


def sigmoid_fn(x: float) -> float:
    return 1.0 / (1.0 + math.exp(-x))


SIGN = LutSpec("sign", sign_fn)
RELU = LutSpec("relu", relu_fn)
SIGMOID = LutSpec("sigmoid", sigmoid_fn)


#: Factory memo: the parametrised workloads mint deterministic names,
#: so two ``threshold(0.25)`` calls MUST return the identical spec —
#: otherwise the registry's one-name-one-LUT check would reject the
#: second call's fresh closure as an alias.
_FACTORY_SPECS: Dict[str, LutSpec] = {}


def threshold(c: float, above: float = 1.0, below: float = 0.0) -> LutSpec:
    """Comparison against a plaintext constant: ``x >= c -> above``
    (default 1), else ``below`` (default 0) — the encrypted-predicate
    building block of threshold analytics and decision stumps."""
    name = (f"threshold[{float(c).hex()}:{float(above).hex()}"
            f":{float(below).hex()}]")
    spec = _FACTORY_SPECS.get(name)
    if spec is None:
        def fn(x: float) -> float:
            return above if x >= c else below

        spec = _FACTORY_SPECS.setdefault(name, LutSpec(name, fn))
    return spec


def quantized(base: Union[LutSpec, LutFn], bits: int,
              max_out: float = 1.0) -> LutSpec:
    """A k-bit quantised activation: ``base`` clamped to
    ``[-max_out, max_out]`` and rounded onto ``2^bits`` uniform output
    levels — the fixed-point activations of an encrypted quantised
    neural network.

    Memoised per ``(base spec, bits, max_out)``: repeated calls with
    the same *named* base return the identical spec.  An anonymous
    callable base is keyed by object identity (a fresh lambda is a
    fresh LUT)."""
    if bits < 1:
        raise ParameterError("quantized activation needs bits >= 1")
    base_spec = base if isinstance(base, LutSpec) else \
        LutSpec(getattr(base, "__name__", "fn"), base)
    key = (f"quant{bits}[{base_spec.name}:{float(max_out).hex()}"
           f":{id(base_spec.fn) if not isinstance(base, LutSpec) else ''}]")
    spec = _FACTORY_SPECS.get(key)
    if spec is None:
        q_step = 2.0 * max_out / (1 << bits)

        def fn(x: float) -> float:
            y = min(max(base_spec.fn(x), -max_out), max_out)
            return round(y / q_step) * q_step

        spec = _FACTORY_SPECS.setdefault(key, LutSpec(
            f"quant{bits}[{base_spec.name}:{float(max_out).hex()}]", fn))
    return spec


#: Name -> spec for the fixed members of the catalogue (parametrised
#: members — threshold/quantized — mint their own named specs).
WORKLOADS: Dict[str, LutSpec] = {s.name: s for s in (SIGN, RELU, SIGMOID)}
