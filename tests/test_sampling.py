"""Tests for the seeded samplers."""

import numpy as np

from repro.math.sampling import Sampler


class TestDeterminism:
    def test_same_seed_same_streams(self):
        a, b = Sampler(42), Sampler(42)
        assert np.array_equal(a.ternary(100), b.ternary(100))
        assert np.array_equal(a.uniform(100, 97), b.uniform(100, 97))
        assert np.array_equal(a.gaussian(100), b.gaussian(100))

    def test_different_seeds_differ(self):
        a, b = Sampler(1), Sampler(2)
        assert not np.array_equal(a.uniform(100, 2**30), b.uniform(100, 2**30))

    def test_spawn_is_deterministic(self):
        a, b = Sampler(7), Sampler(7)
        assert np.array_equal(a.spawn().uniform(10, 101), b.spawn().uniform(10, 101))


class TestDistributions:
    def test_ternary_support(self):
        s = Sampler(0).ternary(1000)
        assert set(np.unique(s)) <= {-1, 0, 1}
        # All three values should appear in 1000 draws.
        assert len(np.unique(s)) == 3

    def test_binary_support(self):
        s = Sampler(0).binary(1000)
        assert set(np.unique(s)) <= {0, 1}

    def test_gaussian_moments(self):
        s = Sampler(0).gaussian(50000)
        assert abs(float(np.mean(s))) < 0.1
        assert 2.8 < float(np.std(s)) < 3.6  # sigma = 3.2

    def test_gaussian_custom_std(self):
        s = Sampler(0).gaussian(50000, std=1.0)
        assert 0.9 < float(np.std(s)) < 1.1

    def test_uniform_range_small_q(self):
        q = 97
        s = Sampler(0).uniform(10000, q)
        assert int(np.min(s)) >= 0 and int(np.max(s)) < q

    def test_uniform_range_36bit(self):
        q = (1 << 36) - 5
        s = Sampler(0).uniform(1000, q)
        assert all(0 <= int(v) < q for v in s)

    def test_uniform_range_very_wide(self):
        q = (1 << 100) + 7
        s = Sampler(0).uniform(100, q)
        assert all(0 <= int(v) < q for v in s)
        # Values should actually use the high bits.
        assert any(int(v) > (1 << 90) for v in s)

    def test_uniform_scalar(self):
        v = Sampler(3).uniform_scalar(1000)
        assert 0 <= v < 1000
