"""Scalar-operation counts of the two bootstrap algorithms.

A parameter-set-level comparison that complements the wall-clock numbers:
count the scalar modular multiplications each bootstrap performs, at any
ring size.  This makes the paper's trade-off quantitative:

* the **conventional** bootstrap runs a *deep, serial* circuit (linear
  transforms + a degree-d sine) over a huge ring (N = 2^16, ~24 limbs)
  with hundreds of key switches — expensive *and* unparallelisable, the
  FAB bottleneck;
* the **scheme-switching** bootstrap runs ``n * n_t`` *independent*
  external products over a small ring (N = 2^13, 1-limb keys) — a larger
  raw op count, but embarrassingly parallel, single-level, and with ~18x
  less key traffic.

The honest headline (recorded in EXPERIMENTS.md): by raw scalar-multiply
count the scheme-switching bootstrap is *more* work; its wins come from
parallel scaling, the smaller parameter set the application then runs
under, and memory traffic — not from doing fewer multiplications.
"""

from __future__ import annotations

from dataclasses import dataclass
import math


def ntt_mults(n: int) -> int:
    """Scalar multiplications in one size-``n`` NTT (radix-2)."""
    return (n // 2) * int(math.log2(n))


@dataclass(frozen=True)
class ConventionalBootstrapOps:
    """Op-count model of ModRaise -> C2S -> EvalMod -> S2C."""

    n: int = 1 << 16
    limbs: int = 24
    special_limbs: int = 1
    dnum: int = 2
    sine_degree: int = 119

    def keyswitch_mults(self) -> int:
        """Hybrid key switch: digit NTTs + BConv MACs + inner product +
        ModDown, all over ``limbs + specials`` residue polynomials."""
        ext = self.limbs + self.special_limbs
        per_digit = max(1, self.limbs // self.dnum)
        bconv = self.n * per_digit * (ext - per_digit) * self.dnum
        ntts = (self.limbs + self.dnum * ext + 2 * self.special_limbs +
                2 * self.limbs)
        inner = 2 * self.dnum * ext * self.n
        return bconv + ntts * ntt_mults(self.n) + inner

    def rotations(self) -> int:
        """BSGS rotations in CoeffToSlot + SlotToCoeff (2 transforms,
        each applied to ct and its conjugate)."""
        n1 = 1 << math.ceil(math.log2(max(1, math.isqrt(self.n // 2))))
        n2 = -(-(self.n // 2) // n1)
        return 4 * (n1 + n2)

    def ct_mults(self) -> int:
        """Ciphertext-ciphertext mults in the Chebyshev evaluation (twice,
        for the real and imaginary coefficient streams)."""
        d = self.sine_degree
        babies = 1 << math.ceil(math.log2(d + 1) / 2)
        giants = int(math.log2(d // babies)) + 1 if d >= babies else 0
        recombine = d // babies + 1
        return 2 * (babies + giants + recombine)

    def total_mults(self) -> int:
        ks = self.keyswitch_mults()
        # Every rotation and every ct-ct mult costs one key switch plus
        # the tensor/diagonal products.
        tensor = 4 * self.limbs * self.n
        return (self.rotations() + self.ct_mults()) * (ks + tensor)


@dataclass(frozen=True)
class SchemeSwitchBootstrapOps:
    """Op-count model of Algorithm 2."""

    n: int = 1 << 13
    limbs: int = 7          # raised basis Q*p
    n_t: int = 500
    n_br: int = 4096        # LWE ciphertexts = packed slots
    decomp_digits: int = 2
    glwe_mask: int = 1

    def external_product_mults(self) -> int:
        rows = (self.glwe_mask + 1) * self.decomp_digits
        ntts = (rows + self.glwe_mask + 1) * self.limbs
        pointwise = rows * (self.glwe_mask + 1) * self.limbs * self.n
        return ntts * ntt_mults(self.n) + pointwise

    def repack_mults(self) -> int:
        levels = int(math.log2(self.n_br)) if self.n_br > 1 else 0
        trace_levels = int(math.log2(self.n // max(1, self.n_br)))
        per_level = self.external_product_mults()  # keyswitch ~ ext product
        return (levels + trace_levels) * per_level

    def total_mults(self) -> int:
        blind = self.n_br * self.n_t * self.external_product_mults()
        return blind + self.repack_mults()


def bootstrap_op_comparison() -> dict:
    """Raw scalar-mult counts at the paper's production parameters."""
    conv = ConventionalBootstrapOps()
    ss = SchemeSwitchBootstrapOps()
    return {
        "conventional_mults": conv.total_mults(),
        "scheme_switching_mults": ss.total_mults(),
        "ss_over_conventional": ss.total_mults() / conv.total_mults(),
        "ss_parallel_fraction": (ss.n_br * ss.n_t * ss.external_product_mults()
                                 / ss.total_mults()),
    }
