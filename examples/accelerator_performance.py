#!/usr/bin/env python3
"""The HEAP accelerator performance model: regenerate the paper's tables.

Prints Tables II-VIII plus the Section III-C key-size audit, side by side
with the paper's reported values, and the multi-FPGA scaling curve that
motivates the whole design (conventional bootstrapping gained only ~20%
from eight FPGAs in FAB; the scheme-switching bootstrap parallelises).
"""

from repro.analysis import (
    format_table,
    key_size_table,
    table2_resources,
    table3_basic_ops,
    table4_ntt,
    table5_bootstrap,
    table6_lr,
    table7_resnet,
    table8_ablation,
)
from repro.hardware import ClusterBootstrapModel, SingleFpgaModel


def show(title, table):
    print(f"\n=== {title} ===")
    print(format_table(*table))


def main() -> None:
    fpga = SingleFpgaModel()
    cluster = ClusterBootstrapModel()

    show("Table II: FPGA resource utilization", table2_resources())
    show("Table III: basic FHE operation latencies", table3_basic_ops(fpga))
    show("Table IV: NTT throughput", table4_ntt(fpga))
    show("Table V: bootstrapping T_mult,a/slot", table5_bootstrap(fpga, cluster))
    show("Table VI: LR training per iteration", table6_lr(fpga, cluster))
    show("Table VII: ResNet-20 inference", table7_resnet(fpga, cluster))
    show("Table VIII: scheme switching vs hardware", table8_ablation())
    show("Section III-C: key sizes and traffic", key_size_table())

    print("\n=== Multi-FPGA scaling (fully-packed bootstrap, 4096 BlindRotates) ===")
    for nodes, t in cluster.scaling_curve(4096, 8).items():
        bar = "#" * int(t * 1e3 * 5)
        print(f"  {nodes} FPGA{'s' if nodes > 1 else ' '}: {t * 1e3:7.3f} ms  {bar}")

    bd = cluster.bootstrap_breakdown(4096, 8)
    print("\n=== Bootstrap breakdown, 8 FPGAs (paper: 0.0025 / 1.3303 / 0.1672 ms) ===")
    print(f"  steps 1-2 (ModulusSwitch): {bd.modswitch_s * 1e3:.4f} ms")
    print(f"  step  3   (BlindRotate+repack): {bd.step3_s * 1e3:.4f} ms")
    print(f"  steps 4-5 (add+rescale): {bd.finish_s * 1e3:.4f} ms")
    print(f"  total: {bd.total_s * 1e3:.4f} ms (paper: 1.5 ms)")

    print("\n=== Calibration report (raw first-principles vs paper anchors) ===")
    for op, e in fpga.calibration_report().items():
        note = "  <-- paper faster than compute-bound datapath estimate" \
            if e.efficiency < 0.5 else ""
        print(f"  {op:13s} raw={e.raw_cycles:11.0f} cycles, "
              f"paper={e.paper_cycles:9.0f} cycles, "
              f"efficiency={e.efficiency:6.3f}{note}")


if __name__ == "__main__":
    main()
