"""Regenerate every paper table from the command line:

    python -m repro.analysis
"""

from ..hardware import ClusterBootstrapModel, SingleFpgaModel
from ..hardware.area import area_comparison, heap_within_asic_envelope
from .tables import (
    format_table,
    key_size_table,
    table2_resources,
    table3_basic_ops,
    table4_ntt,
    table5_bootstrap,
    table6_lr,
    table7_resnet,
    table8_ablation,
)


def main() -> None:
    fpga = SingleFpgaModel()
    cluster = ClusterBootstrapModel()
    sections = [
        ("Table II: FPGA resource utilization", table2_resources()),
        ("Table III: basic FHE operation latencies", table3_basic_ops(fpga)),
        ("Table IV: NTT throughput", table4_ntt(fpga)),
        ("Table V: bootstrapping T_mult,a/slot", table5_bootstrap(fpga, cluster)),
        ("Table VI: LR training per iteration", table6_lr(fpga, cluster)),
        ("Table VII: ResNet-20 inference", table7_resnet(fpga, cluster)),
        ("Table VIII: scheme switching vs hardware", table8_ablation()),
        ("Section III-C: key sizes and traffic", key_size_table()),
    ]
    for title, (headers, rows) in sections:
        print(f"\n=== {title} ===")
        print(format_table(headers, rows))

    print("\n=== Section VI-B: area proxies ===")
    for p in area_comparison():
        print(f"  {p.name:12s} {p.platform:5s} "
              f"{p.modular_multipliers:6d} multipliers  "
              f"{p.onchip_memory_mb:7.1f} MB on-chip")
    print(f"  HEAP-8 within ASIC envelope: {heap_within_asic_envelope()}")


if __name__ == "__main__":
    main()
