"""Byte-accounted registry of derived (lifted) eval-domain key tensors.

ARK's inter-operation key-reuse insight: switching keys are long-lived,
so anything *derived* from them — the batched engines' lifted tensor
forms — should be computed once and shared by every operation that
touches the key.  Before this registry three such caches existed ad hoc:

* the CKKS keyswitch engine's per-``(key, extended basis)``
  ``(L_ext, dnum, 2, N)`` tensors (PR 4, stored on the ``SwitchKey``);
* the repack engine's per-exponent ``(N, d, 2)`` lifted automorphism
  tensors (stored on the engine);
* the batched blind-rotate engine's per-``(n, moduli)`` key tensor
  stack (stored on the ``BlindRotateKey``).

All three now route through one process-wide :class:`EvalKeyRegistry`
keyed ``(owner, kind, subkey)``, so the same lifted tensor serves
keyswitch, rotation and repack; the total derived-tensor footprint is
one number the service can report; and the streaming key cache's second
eviction tier (`drop back to seed+b`) can release every tensor derived
from a key it demotes with one :meth:`~EvalKeyRegistry.drop_owner` call.

Owners are weakly referenced: when a key object dies, its entries (and
their bytes) vanish from the accounting automatically.  An optional
byte capacity turns the registry into an LRU over derived tensors —
by default it is unbounded and acts as pure shared accounting.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

__all__ = ["EvalKeyRegistry", "get_key_registry"]


def _value_nbytes(value: Any) -> int:
    """Bytes of a lifted tensor value: an ndarray or a list/tuple of them."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (list, tuple)):
        return sum(int(v.nbytes) for v in value if isinstance(v, np.ndarray))
    return 0


@dataclass
class _Entry:
    ref: "weakref.ref[Any]"
    value: Any
    nbytes: int
    #: Called with the (still-live) owner when the entry is dropped, so
    #: legacy per-object mirrors (``SwitchKey._eval_tensors``, the repack
    #: engine's dict) stay consistent.  Must not strongly capture the
    #: owner — entries would then keep their owner alive forever.
    on_drop: Optional[Callable[[Any], None]] = None


@dataclass
class RegistryStats:
    """Counter snapshot for benches and the service trace."""

    hits: int = 0
    misses: int = 0
    drops: int = 0
    dropped_bytes: int = 0
    resident_bytes: int = 0
    entries: int = 0
    extra: Dict[str, int] = field(default_factory=dict)


class EvalKeyRegistry:
    """Process-wide cache of lifted key tensors, keyed ``(owner, kind,
    subkey)`` with weakly-referenced owners and running byte accounting."""

    def __init__(self, capacity_bytes: Optional[int] = None):
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple[int, str, Hashable], _Entry]" = OrderedDict()
        self._owner_keys: Dict[int, List[Tuple[int, str, Hashable]]] = {}
        self._finalizers: Dict[int, weakref.finalize] = {}
        self._resident = 0
        self.capacity_bytes = capacity_bytes
        self.hits = 0
        self.misses = 0
        self.drops = 0
        self.dropped_bytes = 0

    # -- core ------------------------------------------------------------------

    def get_or_build(self, owner: Any, kind: str, subkey: Hashable,
                     build: Callable[[], Any],
                     on_drop: Optional[Callable[[Any], None]] = None) -> Any:
        """Return the cached tensor for ``(owner, kind, subkey)``, building
        it once on miss.  ``build`` runs under the registry lock (builds
        are pure lifts; holding the lock keeps concurrent tenants from
        double-lifting the same large tensor)."""
        key = (id(owner), kind, subkey)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.ref() is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry.value
            self.misses += 1
            value = build()
            self._insert(owner, key, value, _value_nbytes(value), on_drop)
            return value

    def register(self, owner: Any, kind: str, subkey: Hashable, value: Any,
                 nbytes: Optional[int] = None,
                 on_drop: Optional[Callable[[Any], None]] = None) -> None:
        """Account a tensor built elsewhere (idempotent per key)."""
        key = (id(owner), kind, subkey)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.ref() is not None:
                self._entries.move_to_end(key)
                return
            self._insert(owner, key, value,
                         _value_nbytes(value) if nbytes is None else int(nbytes),
                         on_drop)

    def _insert(self, owner: Any, key: Tuple[int, str, Hashable], value: Any,
                nbytes: int, on_drop: Optional[Callable[[Any], None]]) -> None:
        oid = id(owner)
        self._entries[key] = _Entry(ref=weakref.ref(owner), value=value,
                                    nbytes=nbytes, on_drop=on_drop)
        self._owner_keys.setdefault(oid, []).append(key)
        self._resident += nbytes
        if oid not in self._finalizers:
            self._finalizers[oid] = weakref.finalize(
                owner, self._owner_died, oid)
        if self.capacity_bytes is not None:
            self._evict_to_fit(keep=key)

    def _evict_to_fit(self, keep: Tuple[int, str, Hashable]) -> None:
        while self._resident > self.capacity_bytes and len(self._entries) > 1:
            victim = next((k for k in self._entries if k != keep), None)
            if victim is None:
                return
            self._drop_key(victim)

    def _drop_key(self, key: Tuple[int, str, Hashable]) -> int:
        entry = self._entries.pop(key, None)
        if entry is None:
            return 0
        self._resident -= entry.nbytes
        self.drops += 1
        self.dropped_bytes += entry.nbytes
        keys = self._owner_keys.get(key[0])
        if keys is not None:
            try:
                keys.remove(key)
            except ValueError:
                pass
            if not keys:
                self._owner_keys.pop(key[0], None)
        if entry.on_drop is not None:
            owner = entry.ref()
            if owner is not None:
                entry.on_drop(owner)
        return entry.nbytes

    def _owner_died(self, oid: int) -> None:
        with self._lock:
            self._finalizers.pop(oid, None)
            for key in list(self._owner_keys.get(oid, ())):
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._resident -= entry.nbytes
            self._owner_keys.pop(oid, None)

    # -- owner-level operations ------------------------------------------------

    def drop_owner(self, owner: Any) -> int:
        """Drop every tensor derived from ``owner``; returns bytes freed.
        The streaming cache's demote tier calls this so a key falling
        back to seed+``b`` residency also sheds its lifted forms."""
        with self._lock:
            return sum(self._drop_key(key)
                       for key in list(self._owner_keys.get(id(owner), ())))

    def owner_bytes(self, owner: Any) -> int:
        """Current derived-tensor bytes attributed to ``owner``."""
        with self._lock:
            return sum(self._entries[key].nbytes
                       for key in self._owner_keys.get(id(owner), ())
                       if key in self._entries)

    # -- introspection ---------------------------------------------------------

    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident

    def stats(self) -> RegistryStats:
        with self._lock:
            per_kind: Dict[str, int] = {}
            for (_oid, kind, _sub), entry in self._entries.items():
                per_kind[kind] = per_kind.get(kind, 0) + entry.nbytes
            return RegistryStats(hits=self.hits, misses=self.misses,
                                 drops=self.drops,
                                 dropped_bytes=self.dropped_bytes,
                                 resident_bytes=self._resident,
                                 entries=len(self._entries),
                                 extra=per_kind)


_REGISTRY = EvalKeyRegistry()


def get_key_registry() -> EvalKeyRegistry:
    """The process-wide registry every engine lifts through."""
    return _REGISTRY
