"""First-principles cycle model of HEAP's primitive operations.

For every primitive the model produces a :class:`OpCost` with separate
compute, on-chip-permute, HBM and network components; the reported
latency is a roofline ``max`` of the overlappable parts (the paper
overlaps memory streaming with compute via the RD/WR FIFOs, and
communication with computation in the multi-FPGA schedule).

The model is *first-principles*: it counts butterflies, MACs and bytes
from the algorithm and divides by the hardware throughputs in
:class:`~repro.hardware.config.HeapHwConfig`.  A separate calibration
layer (:mod:`repro.hardware.fpga`) scales these against the paper's own
measured microbenchmarks and records the residuals — see EXPERIMENTS.md
for the comparison of raw model vs. paper for every op.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Optional

from ..errors import ParameterError
from ..params import CkksParams, TfheParams
from .config import HeapHwConfig


@dataclass
class OpCost:
    """Cycle breakdown of one operation on one FPGA."""

    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    network_cycles: float = 0.0
    pipeline_fill_cycles: float = 0.0

    @property
    def latency_cycles(self) -> float:
        """Roofline: compute and memory streams overlap; the longer wins."""
        return max(self.compute_cycles, self.memory_cycles) + \
            self.network_cycles + self.pipeline_fill_cycles

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            self.compute_cycles + other.compute_cycles,
            self.memory_cycles + other.memory_cycles,
            self.network_cycles + other.network_cycles,
            self.pipeline_fill_cycles + other.pipeline_fill_cycles,
        )

    def scaled(self, k: float) -> "OpCost":
        return OpCost(self.compute_cycles * k, self.memory_cycles * k,
                      self.network_cycles * k, self.pipeline_fill_cycles * k)


class HeapOpModel:
    """Cycle costs of HEAP primitives for a CKKS/TFHE parameter pair."""

    def __init__(self, hw: HeapHwConfig, ckks: CkksParams, tfhe: TfheParams,
                 dnum: int = 2):
        self.hw = hw
        self.ckks = ckks
        self.tfhe = tfhe
        self.dnum = dnum
        self.n = ckks.n
        self.limb_bytes = ckks.n * 36 // 8  # 36-bit limbs on HEAP (Section III-C)

    # -- building blocks -------------------------------------------------------------

    def modop_vector_cycles(self, num_elements: float) -> float:
        """Element-wise modular ops across the 512-unit array (pipelined:
        one result per unit per cycle after the 7-cycle fill)."""
        return num_elements / self.hw.num_mod_units

    def ntt(self, limbs: int = 1) -> OpCost:
        """NTT of ``limbs`` residue polynomials (Section IV-D).

        Two limbs sharing twiddles run concurrently on 256-unit halves, so
        butterfly throughput is 512/cycle across the pair; twiddles for a
        pair are fetched once.
        """
        n = self.n
        stages = int(math.log2(n))
        butterflies = stages * (n // 2) * limbs
        compute = butterflies / self.hw.num_mod_units
        # Stream the polynomial in and out, twiddles once per limb pair.
        bytes_moved = limbs * self.limb_bytes * 2 + \
            math.ceil(limbs / 2) * self.limb_bytes
        memory = bytes_moved / self.hw.hbm_bytes_per_cycle
        return OpCost(compute_cycles=compute, memory_cycles=memory,
                      pipeline_fill_cycles=self.hw.modop_latency_cycles * stages)

    def automorph(self, limbs: int) -> OpCost:
        """CKKS automorph: 512 units x 16 elements; 16 cycles per limb at
        N = 2^13 (Section IV-A), i.e. N / (units*elems) cycles per limb."""
        per_limb = max(1.0, self.n / (self.hw.num_automorph_units *
                                      self.hw.automorph_elems_per_unit))
        return OpCost(compute_cycles=per_limb * limbs,
                      pipeline_fill_cycles=self.hw.modop_latency_cycles)

    def pointwise_mult(self, limbs: int) -> OpCost:
        return OpCost(compute_cycles=self.modop_vector_cycles(self.n * limbs))

    def basis_conversion(self, in_limbs: int, out_limbs: int) -> OpCost:
        """HPS BConv: every output limb accumulates over every input limb
        — the MAC-unit workload of the external-product unit."""
        macs = self.n * in_limbs * out_limbs
        return OpCost(compute_cycles=macs / self.hw.num_mod_units)

    # -- CKKS primitives -------------------------------------------------------------

    def add(self, level: Optional[int] = None) -> OpCost:
        limbs = self._limbs(level)
        elems = 2 * limbs * self.n  # two ring elements
        return OpCost(compute_cycles=self.modop_vector_cycles(elems),
                      memory_cycles=4 * limbs * self.limb_bytes /
                      self.hw.hbm_bytes_per_cycle,
                      pipeline_fill_cycles=self.hw.modop_latency_cycles)

    def keyswitch(self, level: Optional[int] = None) -> OpCost:
        """Hybrid key switch: ModUp (iNTT + BConv + NTT), inner product
        with the key, ModDown (iNTT + BConv + NTT) — Section IV-E notes
        the basis conversion shares the external-product datapath."""
        limbs = self._limbs(level)
        specials = 1
        ext = limbs + specials
        cost = OpCost()
        # iNTT of the digit polys into coefficient domain.
        cost = cost + self.ntt(limbs)
        per_digit = max(1, limbs // self.dnum)
        for _ in range(self.dnum):
            cost = cost + self.basis_conversion(per_digit, ext - per_digit)
            cost = cost + self.ntt(ext)
        # Inner product with the 2 key polys per digit.
        cost = cost + self.pointwise_mult(2 * self.dnum * ext)
        # ModDown both halves.
        for _ in range(2):
            cost = cost + self.ntt(specials)
            cost = cost + self.basis_conversion(specials, limbs)
            cost = cost + self.pointwise_mult(limbs)
        # Key material streamed from HBM: 2 polys x dnum digits x ext limbs.
        key_bytes = 2 * self.dnum * ext * self.limb_bytes
        cost.memory_cycles += key_bytes / self.hw.hbm_bytes_per_cycle
        return cost

    def mult(self, level: Optional[int] = None) -> OpCost:
        limbs = self._limbs(level)
        tensor = OpCost(compute_cycles=self.modop_vector_cycles(4 * limbs * self.n))
        return tensor + self.keyswitch(level)

    def rescale(self, level: Optional[int] = None) -> OpCost:
        limbs = self._limbs(level)
        cost = self.ntt(1)  # iNTT of the dropped limb
        cost = cost + OpCost(compute_cycles=self.modop_vector_cycles(
            2 * 2 * (limbs - 1) * self.n))  # sub + mul on both ring elements
        return cost + self.ntt(limbs - 1)

    def rotate(self, level: Optional[int] = None) -> OpCost:
        limbs = self._limbs(level)
        return self.automorph(2 * limbs) + self.keyswitch(level)

    # -- TFHE primitives -----------------------------------------------------------------

    def external_product(self, limbs: int) -> OpCost:
        """Decompose -> NTT digits -> MAC with RGSW rows -> iNTT (Section IV-E)."""
        d = self.tfhe.decomp_digits
        h = self.tfhe.glwe_mask
        digit_polys = (h + 1) * d
        cost = OpCost(compute_cycles=self.modop_vector_cycles(
            digit_polys * self.n))  # decompose
        cost = cost + self.ntt(digit_polys * limbs)
        cost = cost + self.pointwise_mult(digit_polys * (h + 1) * limbs)
        cost = cost + self.ntt((h + 1) * limbs)
        return cost

    def blind_rotate(self, batch: int = 1, limbs: int = 1,
                     resident_keys: bool = False) -> OpCost:
        """A batch of BlindRotates under the Section IV-E schedule: all
        accumulators advance together so each ``brk_i`` is fetched exactly
        once per batch (or zero times if resident/generated on the fly).
        """
        if batch < 1:
            raise ParameterError("batch must be >= 1")
        n_t = self.tfhe.n_t
        per_iter = self.external_product(limbs)
        rotation = OpCost(compute_cycles=self.modop_vector_cycles(2 * self.n * limbs))
        compute = (per_iter + rotation).scaled(n_t * batch)
        if not resident_keys:
            key_bytes = self.tfhe.blind_rotate_key_bytes()
            compute.memory_cycles += key_bytes / self.hw.hbm_bytes_per_cycle
        return compute

    def repack(self, count: int, limbs: int) -> OpCost:
        """log2(N) automorphism + key-switch levels on the primary node."""
        levels = max(1, int(math.log2(self.n)))
        per_level = self.automorph(2 * limbs) + self.keyswitch(limbs - 1)
        return per_level.scaled(levels)

    # -- helpers ------------------------------------------------------------------------

    def _limbs(self, level: Optional[int]) -> int:
        return self.ckks.max_limbs if level is None else level + 1
