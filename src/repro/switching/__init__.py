"""The paper's core contribution: scheme-switching CKKS bootstrapping."""

from .bootstrap import BootstrapTrace, SchemeSwitchBootstrapper, expected_k_prime_std
from .functional import FunctionalEvaluator, relu_fn, sigmoid_fn, sign_fn
from .keys import KeySizeAudit, SwitchingKeySet, conventional_bootstrap_key_bytes
from .keyswitched import (
    KeySwitchedBootstrapper,
    KeySwitchedKeySet,
    make_keyswitched_toy_params,
)
from .scheduler import BootstrapSchedule, NodeAssignment, make_schedule

__all__ = [
    "BootstrapTrace",
    "SchemeSwitchBootstrapper",
    "expected_k_prime_std",
    "FunctionalEvaluator",
    "relu_fn",
    "sigmoid_fn",
    "sign_fn",
    "KeySizeAudit",
    "KeySwitchedBootstrapper",
    "KeySwitchedKeySet",
    "make_keyswitched_toy_params",
    "SwitchingKeySet",
    "conventional_bootstrap_key_bytes",
    "BootstrapSchedule",
    "NodeAssignment",
    "make_schedule",
]
