"""Tests for sparse packing, the noise-budget API, and area comparison."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.ckks.encoder import CkksEncoder
from repro.errors import NoiseBudgetExceeded, ParameterError
from repro.hardware.area import area_comparison, heap_within_asic_envelope
from repro.math.sampling import Sampler
from repro.params import make_toy_params

N = 64
ENC = CkksEncoder(N, float(2**20))


class TestSparseEncoding:
    def test_roundtrip(self):
        vals = np.array([0.5, -0.25, 0.75, 0.1])
        coeffs = ENC.encode_sparse(vals, 4)
        got = ENC.decode_sparse(coeffs, 4)
        assert np.allclose(got.real, vals, atol=1e-4)

    def test_coefficient_support_is_strided(self):
        """The paper's n_br story: a sparsely-packed message lives in the
        subring, i.e. its coefficients sit at stride N / (2 * num_slots)."""
        num_slots = 4
        vals = np.array([0.5, -0.25, 0.75, 0.1])
        coeffs = ENC.encode_sparse(vals, num_slots)
        stride = N // (2 * num_slots)
        for j, c in enumerate(coeffs):
            if j % stride:
                assert abs(int(c)) <= 1, f"coefficient {j} should be ~0"

    def test_full_packing_is_plain_encode(self):
        vals = np.random.default_rng(0).uniform(-1, 1, N // 2)
        assert np.array_equal(ENC.encode_sparse(vals, N // 2), ENC.encode(vals))

    def test_invalid_slot_counts(self):
        with pytest.raises(ParameterError):
            ENC.encode_sparse([1.0], 3)  # does not divide N/2
        with pytest.raises(ParameterError):
            ENC.encode_sparse([1.0, 2.0], 4)  # wrong length


PARAMS = make_toy_params(n=16, limbs=3, limb_bits=28, scale_bits=22)


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(61))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(62))
    return ctx, sk, ev


class TestNoiseBudget:
    def test_fresh_ciphertext_within_budget(self, stack):
        ctx, sk, ev = stack
        z = np.full(ctx.slots, 0.25)
        ct = ev.encrypt(z)
        ev.check_noise_budget(ct, sk, z)  # must not raise
        assert ev.noise_bits(ct, sk, z) < -5

    def test_budget_violation_raises(self, stack):
        ctx, sk, ev = stack
        ct = ev.encrypt(np.zeros(ctx.slots))
        with pytest.raises(NoiseBudgetExceeded):
            ev.check_noise_budget(ct, sk, np.ones(ctx.slots), max_error=0.5)

    def test_noise_grows_with_depth(self, stack):
        ctx, sk, ev = stack
        z = np.full(ctx.slots, 0.5)
        ct = ev.encrypt(z)
        fresh_noise = ev.noise_bits(ct, sk, z)
        prod = ev.mul_relin_rescale(ct, ev.encrypt(z))
        deep_noise = ev.noise_bits(prod, sk, z * z)
        assert deep_noise > fresh_noise


class TestAreaComparison:
    def test_heap_points_present(self):
        names = [p.name for p in area_comparison()]
        assert "HEAP-1" in names and "HEAP-8" in names

    def test_heap1_counts(self):
        heap1 = next(p for p in area_comparison() if p.name == "HEAP-1")
        assert heap1.modular_multipliers == 512
        assert 40 < heap1.onchip_memory_mb < 50  # paper: 43 MB

    def test_heap8_counts(self):
        heap8 = next(p for p in area_comparison() if p.name == "HEAP-8")
        assert heap8.modular_multipliers == 4096  # paper Section VI-B

    def test_envelope_claim(self):
        assert heap_within_asic_envelope()
