"""Tests for the CKKS canonical-embedding encoder."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.ckks.encoder import CkksEncoder
from repro.errors import ParameterError

N = 32
DELTA = float(2**20)


@pytest.fixture
def enc():
    return CkksEncoder(N, DELTA)


class TestRoundTrip:
    def test_real_vector(self, enc):
        rng = np.random.default_rng(0)
        z = rng.normal(0, 1, N // 2)
        got = enc.decode(enc.encode(z))
        assert np.allclose(got.real, z, atol=1e-4)
        assert np.allclose(got.imag, 0, atol=1e-4)

    def test_complex_vector(self, enc):
        rng = np.random.default_rng(1)
        z = rng.normal(0, 1, N // 2) + 1j * rng.normal(0, 1, N // 2)
        got = enc.decode(enc.encode(z))
        assert np.allclose(got, z, atol=1e-4)

    def test_scalar_broadcast(self, enc):
        got = enc.decode(enc.encode(2.5))
        assert np.allclose(got, 2.5, atol=1e-4)

    def test_short_vector_padded(self, enc):
        got = enc.decode(enc.encode([1.0, 2.0]))
        assert np.allclose(got[:2].real, [1.0, 2.0], atol=1e-4)
        assert np.allclose(got[2:], 0, atol=1e-4)

    def test_custom_scale(self, enc):
        z = [0.5] * (N // 2)
        got = enc.decode(enc.encode(z, scale=2.0**30), scale=2.0**30)
        assert np.allclose(got.real, 0.5, atol=1e-6)

    @given(st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, seed):
        enc = CkksEncoder(16, 2.0**20)
        rng = np.random.default_rng(seed)
        z = rng.uniform(-10, 10, 8) + 1j * rng.uniform(-10, 10, 8)
        got = enc.decode(enc.encode(z))
        assert np.allclose(got, z, atol=1e-3)


class TestAlgebraicStructure:
    def test_encode_is_additive(self, enc):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, N // 2)
        b = rng.normal(0, 1, N // 2)
        sum_coeffs = enc.encode(a) + enc.encode(b)
        assert np.allclose(enc.decode(sum_coeffs), a + b, atol=1e-4)

    def test_coefficients_are_real_integers(self, enc):
        c = enc.encode(np.linspace(-1, 1, N // 2))
        assert all(isinstance(v, int) for v in c)

    def test_slot_product_is_negacyclic_poly_product(self, enc):
        """Pointwise slot multiplication = ring multiplication (mod X^N+1)."""
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, N // 2)
        b = rng.normal(0, 1, N // 2)
        ca = enc.encode(a)
        cb = enc.encode(b)
        # Exact integer negacyclic product.
        prod = np.zeros(N, dtype=object)
        for i in range(N):
            for j in range(N):
                k = i + j
                t = int(ca[i]) * int(cb[j])
                if k >= N:
                    prod[k - N] -= t
                else:
                    prod[k] += t
        got = enc.decode(prod, scale=DELTA * DELTA)
        assert np.allclose(got.real, a * b, atol=1e-3)

    def test_rotation_via_automorphism(self, enc):
        """Applying X -> X^5 to the encoding rotates slots by one position."""
        rng = np.random.default_rng(4)
        z = rng.normal(0, 1, N // 2)
        c = enc.encode(z)
        t = 5
        rotated = np.zeros(N, dtype=object)
        for i in range(N):
            e = (i * t) % (2 * N)
            if e >= N:
                rotated[e - N] -= int(c[i])
            else:
                rotated[e] += int(c[i])
        got = enc.decode(rotated)
        assert np.allclose(got.real, np.roll(z, -1), atol=1e-4)

    def test_conjugation_via_automorphism(self, enc):
        rng = np.random.default_rng(5)
        z = rng.normal(0, 1, N // 2) + 1j * rng.normal(0, 1, N // 2)
        c = enc.encode(z)
        t = 2 * N - 1
        conj = np.zeros(N, dtype=object)
        for i in range(N):
            e = (i * t) % (2 * N)
            if e >= N:
                conj[e - N] -= int(c[i])
            else:
                conj[e] += int(c[i])
        got = enc.decode(conj)
        assert np.allclose(got, np.conj(z), atol=1e-4)


class TestValidation:
    def test_too_many_values(self, enc):
        with pytest.raises(ParameterError):
            enc.encode(np.ones(N))

    def test_bad_ring_dimension(self):
        with pytest.raises(ParameterError):
            CkksEncoder(12, DELTA)

    def test_embed_wrong_shape(self, enc):
        with pytest.raises(ParameterError):
            enc.embed(np.zeros(N + 1))
