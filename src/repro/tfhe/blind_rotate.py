"""BlindRotate (paper Algorithm 1) and programmable bootstrapping.

``BlindRotate(f, brk, (a, b))`` homomorphically computes
``ACC = f * X^(b + <a, s>)`` — the accumulator ends up holding the test
polynomial rotated by the *phase* of the input LWE ciphertext, so its
constant coefficient is ``f`` "evaluated" at the phase.  Because distinct
LWE ciphertexts share no data, HEAP schedules many BlindRotates in
parallel and fetches each ``brk_i`` exactly once for the whole batch
(Section IV-E); :func:`blind_rotate_batch` mirrors that schedule.

The per-iteration update implements the ternary-secret form of
Algorithm 1::

    ACC <- ACC x ( RGSW(1) + (X^{a_i} - 1) RGSW(s_i^+) + (X^{-a_i} - 1) RGSW(s_i^-) )

where ``s_i^+ = [s_i = 1]`` and ``s_i^- = [s_i = -1]``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ParameterError
from ..math.gadget import GadgetVector
from ..math.ntt import get_ntt_engine
from ..math.rns import RnsBasis, RnsPoly
from ..math.sampling import Sampler, derive_seed, mask_stream
from .glwe import GlweCiphertext, GlweSecretKey
from .lwe import LweCiphertext, LweSecretKey
from .rgsw import (RgswCiphertext, external_product, rgsw_encrypt,
                   rgsw_encrypt_seeded, rgsw_trivial)


@dataclass
class BlindRotateKey:
    """``brk = { RGSW(s_i^+), RGSW(s_i^-) }`` for every LWE secret digit."""

    plus: List[RgswCiphertext]
    minus: List[RgswCiphertext]
    gadget: GadgetVector
    h: int
    #: Per-entry ``(plus, minus)`` mask seeds when generated seeded
    #: (``derive_seed(key_seed, "brk", i, sign)``); ``None`` for eager
    #: keys.  Their presence is what switches the process-pool publisher
    #: to the seeds+bodies wire form.
    mask_seeds: Optional[List[Tuple[int, int]]] = field(
        default=None, repr=False, compare=False)

    @classmethod
    def generate(cls, lwe_sk: LweSecretKey, glwe_sk: GlweSecretKey,
                 basis: RnsBasis, gadget: GadgetVector, sampler: Sampler,
                 error_std: Optional[float] = None) -> "BlindRotateKey":
        plus, minus = [], []
        for s in lwe_sk.coeffs:
            s = int(s)
            plus.append(rgsw_encrypt(1 if s == 1 else 0, glwe_sk, basis, gadget,
                                     sampler, error_std))
            minus.append(rgsw_encrypt(1 if s == -1 else 0, glwe_sk, basis, gadget,
                                      sampler, error_std))
        return cls(plus=plus, minus=minus, gadget=gadget, h=glwe_sk.h)

    @classmethod
    def generate_seeded(cls, lwe_sk: LweSecretKey, glwe_sk: GlweSecretKey,
                        basis: RnsBasis, gadget: GadgetVector, key_seed: int,
                        noise: Sampler,
                        error_std: Optional[float] = None) -> "BlindRotateKey":
        """Seeded variant: entry ``i``'s two RGSW encryptions stream their
        masks from ``derive_seed(key_seed, "brk", i, "+"/"-")``, so the
        at-rest/wire form is the body polynomials plus ``2 n_t`` seeds —
        half the §III-C brk bytes at ``h = 1``."""
        plus, minus = [], []
        seeds: List[Tuple[int, int]] = []
        for i, s in enumerate(lwe_sk.coeffs):
            s = int(s)
            sp = derive_seed(key_seed, "brk", i, "+")
            sm = derive_seed(key_seed, "brk", i, "-")
            plus.append(rgsw_encrypt_seeded(1 if s == 1 else 0, glwe_sk, basis,
                                            gadget, mask_stream(sp), noise, error_std))
            minus.append(rgsw_encrypt_seeded(1 if s == -1 else 0, glwe_sk, basis,
                                             gadget, mask_stream(sm), noise, error_std))
            seeds.append((sp, sm))
        return cls(plus=plus, minus=minus, gadget=gadget, h=glwe_sk.h,
                   mask_seeds=seeds)

    @property
    def n_t(self) -> int:
        return len(self.plus)

    def size_bytes(self) -> int:
        """Paper accounting: n_t keys x 2 RGSW, each ``(h+1)d x (h+1)``
        degree N-1 polynomials at ceil(log Q) bits per coefficient."""
        sample = self.plus[0]
        rows, cols = sample.matrix_shape()
        bits = sum(q.bit_length() for q in sample.basis.moduli)
        per_rgsw = rows * cols * sample.n * bits // 8
        return self.n_t * 2 * per_rgsw


class MonomialCache:
    """Evaluation-domain monomials ``X^a`` per limb, built by repeated
    squaring from the transform of ``X`` (no NTT per rotation step)."""

    #: Largest ``2N * N`` dense-table size (elements, per limb) we are
    #: willing to hold; 2^21 is 16 MiB of int64 at N = 1024.
    _DENSE_LIMIT = 1 << 21

    def __init__(self, n: int, basis: RnsBasis):
        self.n = n
        self.basis = basis
        self._x_eval = []
        for q in basis.moduli:
            eng = get_ntt_engine(n, q)
            x = eng.mod.zeros(n)
            x[1] = 1
            self._x_eval.append(eng.forward(x))
        self._cache: Dict[int, List[np.ndarray]] = {}
        self._plain_cache: Dict[int, List[np.ndarray]] = {}
        self._dense: Optional[List[np.ndarray]] = None
        # The instance is shared process-wide via get_monomial_cache; the
        # per-entry caches are race-benign (idempotent build, atomic dict
        # store), but the dense table is expensive enough that concurrent
        # tenants should build it once, not once each.
        self._dense_lock = threading.Lock()

    def monomial(self, a: int) -> List[np.ndarray]:
        """Per-limb eval vectors of ``X^a`` with ``a`` taken mod 2N.

        The repack engine multiplies odd-branch ciphertexts by plain
        ``X^(N/l)`` shifts; caching the eval vector makes that a pointwise
        multiply with no NTT and no pow-chain after the first use.
        """
        a = a % (2 * self.n)
        vecs = self._plain_cache.get(a)
        if vecs is None:
            vecs = []
            for q, x_eval in zip(self.basis.moduli, self._x_eval):
                eng = get_ntt_engine(self.n, q)
                vecs.append(eng.mod.pow_vec(x_eval, a))
            self._plain_cache[a] = vecs
        return vecs

    def monomial_minus_one(self, a: int) -> List[np.ndarray]:
        """Per-limb eval vectors of ``X^a - 1`` with ``a`` taken mod 2N."""
        a = a % (2 * self.n)
        vecs = self._cache.get(a)
        if vecs is None:
            vecs = []
            for q, x_eval in zip(self.basis.moduli, self._x_eval):
                eng = get_ntt_engine(self.n, q)
                mono = eng.mod.pow_vec(x_eval, a)
                vecs.append(eng.mod.sub(mono, eng.mod.zeros(self.n) + 1))
            self._cache[a] = vecs
        return vecs

    def minus_one_matrix(self, a_vals: np.ndarray) -> Optional[List[np.ndarray]]:
        """Per-limb ``(N, len(a_vals))`` matrices of ``X^a - 1`` columns.

        Backed by a dense ``(N, 2N)`` table per limb so a whole batch of
        rotation amounts is one column gather; the table is filled once by
        running products ``X^(a+1) = X^a * X`` in the evaluation domain —
        the same modular arithmetic as :meth:`monomial_minus_one`, so the
        two paths agree bit-for-bit.  Returns ``None`` (callers fall back
        to stacking :meth:`monomial_minus_one` vectors) when the table
        would outgrow ``_DENSE_LIMIT``.
        """
        two_n = 2 * self.n
        if two_n * self.n > self._DENSE_LIMIT:
            return None
        if self._dense is None:
            with self._dense_lock:
                if self._dense is None:
                    dense = []
                    for q, x_eval in zip(self.basis.moduli, self._x_eval):
                        eng = get_ntt_engine(self.n, q)
                        rows = eng.mod.zeros((two_n, self.n))
                        rows[0] = 1  # X^0
                        for a in range(1, two_n):
                            rows[a] = eng.mod.mul(rows[a - 1], x_eval)
                        rows = eng.mod.sub(rows, eng.mod.zeros(self.n) + 1)
                        # Column-major gathers want (N, 2N) contiguous
                        # columns.
                        dense.append(np.ascontiguousarray(rows.T))
                    self._dense = dense
        return [d[:, a_vals] for d in self._dense]


#: Process-wide caches: twiddle-style state that every BlindRotate over the
#: same ``(N, moduli)`` ring can share.  Building a MonomialCache costs one
#: NTT per limb and each ``X^a - 1`` entry a pow-chain; rebuilding them per
#: call (the seed behaviour) wasted that work on every batch.
_MONO_CACHE: Dict[Tuple[int, Tuple[int, ...]], MonomialCache] = {}
_RGSW_ONE_CACHE: Dict[Tuple[int, int, Tuple[int, ...], GadgetVector], RgswCiphertext] = {}
_SHARED_CACHE_LOCK = threading.Lock()


def get_monomial_cache(n: int, basis: RnsBasis) -> MonomialCache:
    """Shared :class:`MonomialCache` for ``(n, basis.moduli)``.

    Lock-free hit, double-checked miss: two tenants racing on a cold
    ring must share one cache (its expensive lazy ``_dense`` table is
    guarded by a per-instance lock).
    """
    key = (n, tuple(basis.moduli))
    cache = _MONO_CACHE.get(key)
    if cache is None:
        with _SHARED_CACHE_LOCK:
            cache = _MONO_CACHE.get(key)
            if cache is None:
                cache = MonomialCache(n, basis)
                _MONO_CACHE[key] = cache
    return cache


def get_rgsw_one(h: int, n: int, basis: RnsBasis, gadget: GadgetVector) -> RgswCiphertext:
    """Shared ``rgsw_trivial(1, ...)`` — safe because RGSW ops never mutate."""
    key = (h, n, tuple(basis.moduli), gadget)
    one = _RGSW_ONE_CACHE.get(key)
    if one is None:
        with _SHARED_CACHE_LOCK:
            one = _RGSW_ONE_CACHE.get(key)
            if one is None:
                one = rgsw_trivial(1, h, n, basis, gadget)
                _RGSW_ONE_CACHE[key] = one
    return one


def build_test_vector(g: Callable[[int], int], n: int, basis: RnsBasis) -> RnsPoly:
    """Test polynomial ``f`` with ``const(f * X^phi) = g(phi)`` for all
    ``phi in [0, 2N)``.

    ``g`` must be negacyclic: ``g(t + N) = -g(t) (mod Q)``; we verify this
    and raise otherwise, because a violated constraint silently corrupts
    every bootstrap that uses the vector.
    """
    big_q = basis.product
    for t in range(n):
        if (g(t) + g(t + n)) % big_q != 0:
            raise ParameterError(
                f"test function is not negacyclic at t={t}: g(t)={g(t)}, g(t+N)={g(t + n)}"
            )
    coeffs = np.zeros(n, dtype=object)
    coeffs[0] = g(0) % big_q
    for j in range(1, n):
        coeffs[j] = g(2 * n - j) % big_q
    return RnsPoly.from_int_coeffs(n, basis, coeffs)


def blind_rotate(test_vector: RnsPoly, ct: LweCiphertext, brk: BlindRotateKey,
                 cache: Optional[MonomialCache] = None) -> GlweCiphertext:
    """Algorithm 1: rotate ``test_vector`` by the encrypted phase of ``ct``.

    ``ct`` must already be modulus-switched to ``2N``.
    """
    n = test_vector.n
    if ct.q != 2 * n:
        raise ParameterError(f"LWE ciphertext must be mod 2N={2 * n}, got {ct.q}")
    if ct.dim != brk.n_t:
        raise ParameterError("LWE dimension does not match blind-rotate key")
    basis = test_vector.basis
    cache = cache or get_monomial_cache(n, basis)
    acc = GlweCiphertext.trivial(
        _shift(test_vector, int(ct.b)).to_eval(), h=brk.h
    )
    one = get_rgsw_one(brk.h, n, basis, brk.gadget)
    for i in range(ct.dim):
        a_i = int(ct.a[i]) % (2 * n)
        if a_i == 0:
            continue
        combined = one
        combined = combined + brk.plus[i].mul_eval_vector(cache.monomial_minus_one(a_i))
        combined = combined + brk.minus[i].mul_eval_vector(
            cache.monomial_minus_one((2 * n - a_i) % (2 * n))
        )
        acc = external_product(combined, acc)
    return acc


def blind_rotate_batch(test_vector: RnsPoly, cts: Sequence[LweCiphertext],
                       brk: BlindRotateKey,
                       engine: str = "vectorized") -> List[GlweCiphertext]:
    """BlindRotate a batch, iterating keys in the outer loop.

    This is the paper's optimised schedule (Section IV-E): all
    accumulators advance together through iteration ``i`` so ``brk_i`` is
    fetched once per batch instead of once per ciphertext — the source of
    the claimed memory-traffic reduction.  Functionally identical to
    mapping :func:`blind_rotate` over the batch (tests assert this).

    ``engine`` selects the execution backend:

    * ``"vectorized"`` (default) — :mod:`repro.tfhe.batch_engine`'s
      structure-of-arrays tensor engine: the whole batch advances through
      each iteration as dense numpy tensors, bit-identical to the
      reference path but with the batch dimension inside every NTT
      butterfly and external-product MAC.
    * ``"reference"`` — the scalar per-ciphertext loop (the test oracle).
    """
    if engine == "vectorized":
        from .batch_engine import blind_rotate_batch_vectorized

        return blind_rotate_batch_vectorized(test_vector, cts, brk)
    if engine != "reference":
        raise ParameterError(f"unknown blind-rotate engine {engine!r}")
    return blind_rotate_batch_reference(test_vector, cts, brk)


def blind_rotate_batch_reference(test_vector: RnsPoly, cts: Sequence[LweCiphertext],
                                 brk: BlindRotateKey) -> List[GlweCiphertext]:
    """Scalar reference schedule: brk_i outer loop, one ciphertext at a time."""
    if not cts:
        return []
    n = test_vector.n
    basis = test_vector.basis
    cache = get_monomial_cache(n, basis)
    for ct in cts:
        if ct.q != 2 * n or ct.dim != brk.n_t:
            raise ParameterError("batch contains an incompatible LWE ciphertext")
    accs = [GlweCiphertext.trivial(_shift(test_vector, int(ct.b)).to_eval(), h=brk.h)
            for ct in cts]
    one = get_rgsw_one(brk.h, n, basis, brk.gadget)
    for i in range(brk.n_t):
        plus_i, minus_i = brk.plus[i], brk.minus[i]  # fetched once per batch
        for j, ct in enumerate(cts):
            a_i = int(ct.a[i]) % (2 * n)
            if a_i == 0:
                continue
            combined = one + plus_i.mul_eval_vector(cache.monomial_minus_one(a_i))
            combined = combined + minus_i.mul_eval_vector(
                cache.monomial_minus_one((2 * n - a_i) % (2 * n))
            )
            accs[j] = external_product(combined, accs[j])
    return accs


def _shift(poly: RnsPoly, k: int) -> RnsPoly:
    """``poly * X^k`` on an RnsPoly (coefficient domain)."""
    from .glwe import _shift_rns

    return _shift_rns(poly, k)
