"""Tests for the cached signed-permutation automorphism tables."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.math.automorphism import get_automorphism_perm
from repro.math.modular import find_ntt_primes
from repro.math.ntt import get_ntt_engine
from repro.math.rns import RnsBasis, RnsPoly
from repro.tfhe.keyswitch import _int_automorphism

N = 32
Q = find_ntt_primes(28, N, 1)[0]


def _naive_automorphism(coeffs, t):
    """The seed's per-coefficient scatter loop (exact integers)."""
    n = len(coeffs)
    out = np.zeros(n, dtype=object)
    for i in range(n):
        e = (i * t) % (2 * n)
        if e >= n:
            out[e - n] -= int(coeffs[i])
        else:
            out[e] += int(coeffs[i])
    return out


@pytest.mark.parametrize("t", [3, 5, 9, 17, 33, 63, 2 * N - 1])
def test_int_automorphism_matches_naive_loop(t):
    rng = np.random.default_rng(t)
    coeffs = np.asarray([int(v) for v in rng.integers(-10**9, 10**9, N)],
                        dtype=object)
    assert np.array_equal(_int_automorphism(coeffs, t),
                          _naive_automorphism(coeffs, t))


def test_even_exponent_rejected():
    with pytest.raises(ParameterError):
        _int_automorphism(np.zeros(N, dtype=object), 4)
    with pytest.raises(ParameterError):
        get_automorphism_perm(N, 2 * N)  # 0 mod 2N is even too


def test_perm_is_cached():
    assert get_automorphism_perm(N, 5) is get_automorphism_perm(N, 5)
    # Exponents are normalised mod 2N before lookup.
    assert get_automorphism_perm(N, 5) is get_automorphism_perm(N, 5 + 2 * N)


def test_gather_and_scatter_forms_agree():
    perm = get_automorphism_perm(N, 9)
    rng = np.random.default_rng(0)
    x = rng.integers(0, Q, N)
    scatter = np.zeros(N, dtype=np.int64)
    scatter[perm.dest] = np.where(perm.dest_flip, (Q - x) % Q, x)
    gather = np.where(perm.src_flip, (Q - x[perm.src]) % Q, x[perm.src])
    assert np.array_equal(scatter, gather)


@pytest.mark.parametrize("t", [3, 5, 9, 17, 33])
def test_eval_domain_gather_matches_coeff_permute(t):
    """NTT(phi_t(x)) equals the sign-free slot gather of NTT(x)."""
    eng = get_ntt_engine(N, Q)
    perm = get_automorphism_perm(N, t)
    rng = np.random.default_rng(t)
    x = rng.integers(0, Q, N)
    permuted = np.where(perm.src_flip, (Q - x[perm.src]) % Q, x[perm.src])
    assert np.array_equal(eng.forward(permuted), eng.forward(x)[perm.eval_src])


@pytest.mark.parametrize("t", [3, 5, 2 * N - 1])
def test_rns_poly_automorphism_matches_naive(t):
    basis = RnsBasis(find_ntt_primes(30, N, 2))
    rng = np.random.default_rng(t)
    coeffs = np.asarray([int(v) for v in rng.integers(0, 10**12, N)],
                        dtype=object)
    poly = RnsPoly.from_int_coeffs(N, basis, coeffs)
    got = poly.automorphism(t)
    want = RnsPoly.from_int_coeffs(
        N, basis, np.mod(_naive_automorphism(coeffs, t), basis.product))
    assert got == want


def test_automorphism_from_eval_domain_input():
    """RnsPoly.automorphism must round-trip through coeff when handed an
    eval-domain polynomial."""
    basis = RnsBasis([Q])
    rng = np.random.default_rng(1)
    coeffs = np.asarray([int(v) for v in rng.integers(0, Q, N)], dtype=object)
    poly = RnsPoly.from_int_coeffs(N, basis, coeffs)
    assert poly.to_eval().automorphism(5) == poly.automorphism(5)
