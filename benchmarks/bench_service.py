"""Open-loop load benchmark for the coalescing bootstrap service.

The batched engines only pay off when the ``(N, batch, h+1)`` tensors
are full, but real traffic arrives one ciphertext at a time.  This bench
measures what :class:`~repro.service.BootstrapService` recovers of the
batch speedup under realistic load: a **seeded open-loop generator**
(requests arrive on an exponential clock at the offered rate, never
waiting for completions — the standard way to expose saturation, since a
closed loop self-throttles) drives single-LWE bootstrap requests from
many user ids sharing one tenant key set, at the canonical workload
(N = 2^10, max_batch = 32, n_t = 8 — same as
``bench_blind_rotate_batch.py`` and ``bench_mp_scaling.py``).

Reported per offered-load point: p50/p99 request latency, completed
throughput, mean achieved batch fill, key-cache hit rate, rejections.
The sweep runs 0.25x, 0.5x, 1x and 2x of the measured coalesced
capacity; the 2x point is saturation.

Two **no-coalescing per-request baselines** run at the same saturated
offered load, both ``max_batch=1, max_delay_s=0`` (every request pays a
solo fan-out, which is exactly what a service without a coalescer does):

* ``no_coalescing_baseline`` — solo dispatch through the *scalar*
  reference engine: the per-request serving path as it existed before
  the batch engines landed (PRs 1-4 only help callers who arrive in
  batches; a lone request on the pre-batching repo ran the scalar
  oracle).  This is the baseline the acceptance gate compares against:
  it measures what the serving layer as a whole (coalescer + batched
  engine) buys a single-ciphertext caller.
* ``no_coalescing_vectorized`` — solo dispatch through the *batched*
  engine at batch 1.  This decomposes the win: coalescing's own
  amortization is bounded by the engine's solo/marginal cost ratio
  (~2.4x at N = 2^10: a batch-1 call is fixed-overhead-bound, a batch-32
  call is butterfly-bound), so this ratio is reported transparently
  rather than gated.

Acceptance gate (full mode): saturated coalesced throughput >= 3x the
scalar per-request baseline.  The measured engine+coalescing win is
~6-7x at this ring size, so 3x leaves headroom for coalescer overhead
(queueing, asyncio, slicing) without tolerating a broken coalescer.

A second section exercises the **multi-tenant key cache**: several
tenants with distinct key sets, a byte-capacity that only fits some of
them, and a skewed seeded access pattern — reporting hit rate,
evictions, and peak resident key bytes.

Run with ``PYTHONPATH=src python benchmarks/bench_service.py`` (or via
pytest; excluded from tier-1 ``testpaths``).  ``--quick`` is the CI
variant: N = 2^6, fewer requests, gate relaxed to 1.5x (CI containers
are 1-2 cores and noisy; the 3x claim is a full-mode claim).
"""

import asyncio
import os
import sys
import time

import numpy as np

try:
    from conftest import emit
except ImportError:  # running as a script, not under pytest
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import emit

from _timing import write_bench_json

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.errors import ServiceOverloadError
from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis
from repro.math.sampling import Sampler
from repro.service import BootstrapService, ServiceTrace, UserKeys
from repro.switching.pipeline import BootstrapTrace, LocalExecutor
from repro.tfhe.blind_rotate import BlindRotateKey, build_test_vector
from repro.tfhe.glwe import GlweSecretKey
from repro.tfhe.lwe import LweSecretKey, lwe_encrypt

JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_service.json")

#: LWE dimension, matching the blind-rotate and mp-scaling benches.
N_T = 8
SEED = 20240604


class _KeyBox:
    """Minimal key-set stand-in: the executors only need ``.brk``."""

    def __init__(self, brk):
        self.brk = brk


def _setup(n, seed=1234):
    q = find_ntt_primes(28, n, 1)[0]
    basis = RnsBasis([q])
    gadget = GadgetVector(q=q, base_bits=14, digits=2)
    s = Sampler(seed)
    lwe_sk = LweSecretKey.generate(N_T, s)
    glwe_sk = GlweSecretKey.generate(n, 1, s)
    brk = BlindRotateKey.generate(lwe_sk, glwe_sk, basis, gadget, s)

    def g(t):
        t = t % (2 * n)
        return (q // 8) * (1 if t < n else -1) % q

    f = build_test_vector(g, n, basis)
    return basis, lwe_sk, brk, f


def _percentile(sorted_vals, p):
    if not sorted_vals:
        return 0.0
    k = min(len(sorted_vals) - 1, int(round(p / 100 * (len(sorted_vals) - 1))))
    return sorted_vals[k]


async def _drive(svc, lwes, users, rate, rng):
    """Open-loop arrivals: request i is injected at the i-th exponential
    arrival time regardless of completions; returns per-request latency
    (submit -> result) and the rejection count."""
    latencies = []
    rejected = 0
    tasks = []

    async def one(uid, lwe):
        nonlocal rejected
        t0 = time.perf_counter()
        try:
            await svc.submit(uid, lwe)
        except ServiceOverloadError:
            rejected += 1
        else:
            latencies.append(time.perf_counter() - t0)

    start = time.perf_counter()
    due = 0.0
    for uid, lwe in zip(users, lwes):
        due += rng.exponential(1.0 / rate)
        delay = due - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(uid, lwe)))
    await asyncio.gather(*tasks)
    return latencies, rejected


def _run_point(uk, lwes, users, rate, *, max_batch, max_delay_s,
               max_queue=1024, engine="vectorized"):
    trace = ServiceTrace()

    async def main():
        svc = BootstrapService(lambda uid: uk, max_batch=max_batch,
                               max_delay_s=max_delay_s,
                               max_queue=max_queue, trace=trace,
                               blind_rotate_engine=engine)
        async with svc:
            t0 = time.perf_counter()
            latencies, rejected = await _drive(
                svc, lwes, users, rate, np.random.default_rng(SEED))
            elapsed = time.perf_counter() - t0
        return latencies, rejected, elapsed

    latencies, rejected, elapsed = asyncio.run(main())
    latencies.sort()
    completed = len(latencies)
    return {
        "offered_rps": round(rate, 2),
        "engine": engine,
        "max_batch": max_batch,
        "requests": len(lwes),
        "completed": completed,
        "rejected": rejected,
        "throughput_rps": round(completed / elapsed, 2),
        "p50_latency_s": round(_percentile(latencies, 50), 6),
        "p99_latency_s": round(_percentile(latencies, 99), 6),
        "mean_batch_fill": round(trace.mean_batch_fill, 2),
        "key_cache_hit_rate": round(trace.key_cache_hit_rate, 4),
        "batches": trace.batches,
    }


def _tenant_cache_section(n, tenants, resident_limit, requests):
    """Multi-tenant working set: distinct key sets, capacity that fits
    only ``resident_limit`` of them, skewed seeded access."""
    user_keys = {}
    lwe_sks = {}
    for t in range(tenants):
        _, lwe_sk, brk, f = _setup(n, seed=3000 + t)
        user_keys[f"tenant-{t}"] = UserKeys(_KeyBox(brk), f)
        lwe_sks[f"tenant-{t}"] = lwe_sk
    per_tenant = user_keys["tenant-0"].resident_bytes()
    capacity = resident_limit * per_tenant + per_tenant // 2

    rng = np.random.default_rng(SEED + 1)
    s = Sampler(77)
    # Zipf-ish skew: low-numbered tenants dominate, tail forces evictions.
    weights = np.array([1.0 / (t + 1) for t in range(tenants)])
    weights /= weights.sum()
    sequence = rng.choice(tenants, size=requests, p=weights)
    trace = ServiceTrace()

    async def main():
        svc = BootstrapService(lambda uid: user_keys[uid],
                               max_batch=8, max_delay_s=0.002,
                               key_cache_bytes=capacity, trace=trace)
        async with svc:
            # Waves, not one big gather: in-flight requests pin their
            # entries (eviction is deferred while pinned), so a single
            # gather of the whole sequence would pin every tenant at
            # once and never exercise eviction.
            wave = 8
            for i in range(0, len(sequence), wave):
                await asyncio.gather(*[
                    svc.submit(f"tenant-{t}",
                               lwe_encrypt(int(t) * 3,
                                           lwe_sks[f"tenant-{t}"],
                                           2 * n, s, error_std=0.5))
                    for t in sequence[i:i + wave]])

    asyncio.run(main())
    return {
        "tenants": tenants,
        "requests": requests,
        "capacity_bytes": capacity,
        "per_tenant_key_bytes": per_tenant,
        "resident_limit": resident_limit,
        "key_cache_hit_rate": round(trace.key_cache_hit_rate, 4),
        "evictions": trace.key_cache_evictions,
        "peak_resident_key_bytes": trace.peak_resident_key_bytes,
    }


def _run(n, max_batch, requests, num_users, gate_ratio):
    basis, lwe_sk, brk, f = _setup(n)
    uk = UserKeys(_KeyBox(brk), f)
    s = Sampler(42)
    lwes = [lwe_encrypt(i * 5, lwe_sk, 2 * n, s, error_std=0.5)
            for i in range(requests)]
    users = [f"user-{i % num_users}" for i in range(requests)]

    # Measured capacity of one full coalesced batch: the load sweep is
    # expressed in multiples of this so the saturation point is honest
    # on any host.
    ex = LocalExecutor(_KeyBox(brk), f, "vectorized")
    ex.fanout(lwes[:max_batch], BootstrapTrace())  # warmup (caches)
    t0 = time.perf_counter()
    ex.fanout(lwes[:max_batch], BootstrapTrace())
    batch_s = time.perf_counter() - t0
    capacity_rps = max_batch / batch_s
    # One batch of coalescing wait is the latency currency: wait about
    # half a batch service time before dispatching a partial batch.
    max_delay_s = max(batch_s / 2, 0.002)

    results = []
    for load in (0.25, 0.5, 1.0, 2.0):
        point = _run_point(uk, lwes, users, load * capacity_rps,
                           max_batch=max_batch, max_delay_s=max_delay_s)
        point["load"] = load
        results.append(point)
    saturated = results[-1]

    # Primary baseline: per-request dispatch on the scalar reference
    # engine — the serving path a lone caller had before the batch
    # engines existed (the gate measures coalescer + batched engine).
    baseline = _run_point(uk, lwes, users, 2.0 * capacity_rps,
                          max_batch=1, max_delay_s=0.0,
                          engine="reference")
    baseline["load"] = 2.0
    # Secondary reference: batch-1 dispatch through the batched engine,
    # isolating coalescing's own amortization (bounded by the engine's
    # solo/marginal ratio; reported, not gated).
    solo_vec = _run_point(uk, lwes, users, 2.0 * capacity_rps,
                          max_batch=1, max_delay_s=0.0)
    solo_vec["load"] = 2.0

    ratio = saturated["throughput_rps"] / baseline["throughput_rps"]
    vec_ratio = saturated["throughput_rps"] / solo_vec["throughput_rps"]
    write_bench_json(JSON_PATH, "service_load", results,
                     extra={"n": n, "n_t": N_T, "num_users": num_users,
                            "coalescer_max_delay_s": round(max_delay_s, 6),
                            "capacity_rps": round(capacity_rps, 2),
                            "no_coalescing_baseline": baseline,
                            "no_coalescing_vectorized": solo_vec,
                            "coalescing_speedup_at_saturation":
                                round(ratio, 2),
                            "coalescing_speedup_vs_batch1_vectorized":
                                round(vec_ratio, 2),
                            "gate_ratio": gate_ratio,
                            "tenant_cache": _tenant_cache_section(
                                min(n, 1 << 8), tenants=6,
                                resident_limit=3,
                                requests=max(requests // 2, 24))})

    lines = [f"Coalescing bootstrap service under open-loop load "
             f"(N={n}, max_batch={max_batch}, n_t={N_T}, "
             f"{num_users} users sharing one key set)",
             f"measured single-batch capacity: {capacity_rps:.1f} req/s "
             f"(batch of {max_batch} in {batch_s:.4f}s)",
             f"{'load':>6} {'offered':>9} {'thru rps':>9} {'p50 ms':>8} "
             f"{'p99 ms':>8} {'fill':>6} {'hit':>6} {'rej':>4}"]
    for r in results:
        lines.append(
            f"{r['load']:>5.2f}x {r['offered_rps']:>9.1f} "
            f"{r['throughput_rps']:>9.1f} "
            f"{r['p50_latency_s'] * 1e3:>8.1f} "
            f"{r['p99_latency_s'] * 1e3:>8.1f} "
            f"{r['mean_batch_fill']:>6.1f} "
            f"{r['key_cache_hit_rate']:>6.2f} {r['rejected']:>4}")
    for b, tag in ((baseline, "no-coalescing baseline (scalar engine)"),
                   (solo_vec, "batch-1 vectorized reference")):
        lines.append(
            f"  none {b['offered_rps']:>9.1f} {b['throughput_rps']:>9.1f} "
            f"{b['p50_latency_s'] * 1e3:>8.1f} "
            f"{b['p99_latency_s'] * 1e3:>8.1f} "
            f"{b['mean_batch_fill']:>6.1f} "
            f"{b['key_cache_hit_rate']:>6.2f} {b['rejected']:>4}"
            f"   <- {tag}")
    lines.append(f"coalescing speedup at saturation: {ratio:.2f}x vs "
                 f"scalar per-request dispatch (gate: >= {gate_ratio}x); "
                 f"{vec_ratio:.2f}x vs batch-1 vectorized dispatch")
    emit("service", "\n".join(lines))

    assert ratio >= gate_ratio, (
        f"coalescing + batched engine only bought {ratio:.2f}x over "
        f"scalar per-request dispatch at saturation "
        f"(gate {gate_ratio}x, N={n}, max_batch={max_batch})")
    return results


def bench_service():
    _run(1 << 10, 32, requests=192, num_users=16, gate_ratio=3.0)


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        # CI variant: tiny ring, small sweep; the serving layer must
        # still clearly beat scalar per-request dispatch, but the 3x
        # claim is reserved for full mode (CI containers are noisy).
        _run(1 << 6, 8, requests=48, num_users=4, gate_ratio=1.5)
    else:
        _run(1 << 10, 32, requests=192, num_users=16, gate_ratio=3.0)
    print("bench_service: OK")
