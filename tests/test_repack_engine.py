"""Property tests for the batched LWE->RLWE repack engine.

The vectorized engine must be *bit-identical* to the scalar reference
recursion (``repack_reference``) for every ring size, pack width, limb
count, and digit path — the engine is a performance rewrite, not an
approximation."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.math.automorphism import get_automorphism_perm
from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis, RnsPoly
from repro.math.sampling import Sampler
from repro.profiling import count_ops
from repro.tfhe.glwe import GlweSecretKey, glwe_encrypt
from repro.tfhe.keyswitch import AutomorphismKeySet
from repro.tfhe.repack import (
    repack,
    repack_exponents,
    repack_keyswitch_count,
    repack_reference,
    repack_with_counters,
)
from repro.tfhe.repack_engine import RepackEngine, repack_vectorized


def _stack(n, limbs=1, limb_bits=28, base_bits=7, digits=4, seed=5):
    if limbs == 1:
        basis = RnsBasis([find_ntt_primes(limb_bits, n, 1)[0]])
    else:
        basis = RnsBasis(find_ntt_primes(limb_bits, n, limbs))
    gadget = GadgetVector(q=basis.product, base_bits=base_bits, digits=digits)
    s = Sampler(seed)
    sk = GlweSecretKey.generate(n, 1, s)
    auto = AutomorphismKeySet.generate(sk, repack_exponents(n), basis,
                                       gadget, s)
    return basis, sk, auto, s


def _encrypt_batch(n, basis, sk, s, count):
    cts = []
    for i in range(count):
        m = np.zeros(n, dtype=object)
        m[0] = 1000 * (i + 1)
        m[(7 * i + 3) % n] = 31337 + i  # garbage the pack must cancel
        cts.append(glwe_encrypt(RnsPoly.from_int_coeffs(n, basis, m), sk, s))
    return cts


def _assert_identical(got, want):
    assert got.n == want.n and got.basis == want.basis
    for g, w in zip(list(got.mask) + [got.body], list(want.mask) + [want.body]):
        gc, wc = g.to_coeff(), w.to_coeff()
        for lg, lw in zip(gc.limbs, wc.limbs):
            assert np.array_equal(np.asarray(lg), np.asarray(lw))


# ---------------------------------------------------------------------------
# Bit-identity sweep
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n,n_cts", [
    (16, 16),    # full pack, smallest ring
    (16, 1),     # pure trace (no merge levels)
    (32, 8),     # partial pack: merge tree + trace tail
    (64, 64),    # full pack, mid ring
    (128, 4),    # deep trace tail
    (256, 16),   # largest tier-1 ring
])
@pytest.mark.parametrize("digit_path", ["fresh", "hoisted"])
def test_bit_identity_single_limb(n, n_cts, digit_path):
    basis, sk, auto, s = _stack(n, seed=n + n_cts)
    cts = _encrypt_batch(n, basis, sk, s, n_cts)
    want = repack_reference(cts, auto)
    got = repack_vectorized(cts, auto, digit_path=digit_path)
    _assert_identical(got, want)


@pytest.mark.parametrize("n_cts", [4, 16])
@pytest.mark.parametrize("digit_path", ["auto", "fresh", "hoisted"])
def test_bit_identity_multi_limb(n_cts, digit_path):
    n = 16
    basis, sk, auto, s = _stack(n, limbs=3, limb_bits=30, base_bits=6,
                                digits=15, seed=n_cts)
    cts = _encrypt_batch(n, basis, sk, s, n_cts)
    want = repack_reference(cts, auto)
    got = repack_vectorized(cts, auto, digit_path=digit_path)
    _assert_identical(got, want)


def test_bit_identity_wide_modulus():
    """q >= 2^31 forces the object-dtype NTT path; the engine must fall
    back off the lazy uint64 accumulator and still match."""
    n = 16
    basis, sk, auto, s = _stack(n, limb_bits=36, base_bits=9, digits=4,
                                seed=99)
    cts = _encrypt_batch(n, basis, sk, s, 8)
    want = repack_reference(cts, auto)
    for path in ("auto", "fresh", "hoisted"):
        _assert_identical(repack_vectorized(cts, auto, digit_path=path), want)


def test_dispatcher_default_is_vectorized():
    n = 32
    basis, sk, auto, s = _stack(n, seed=3)
    cts = _encrypt_batch(n, basis, sk, s, 4)
    _assert_identical(repack(cts, auto), repack_reference(cts, auto))


# ---------------------------------------------------------------------------
# Hoisted decomposition regression
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("t", [3, 5, 9, 17])
def test_hoisted_digits_equal_fresh_digits(t):
    """The +/- double-decompose with a signed gather must reproduce the
    digits of decompose-after-permute exactly (balanced decomposition is
    elementwise but not negation-equivariant, hence the two tensors)."""
    n = 16
    q = find_ntt_primes(28, n, 1)[0]
    gadget = GadgetVector(q=q, base_bits=7, digits=4)
    perm = get_automorphism_perm(n, t)
    rng = np.random.default_rng(t)
    x = rng.integers(0, q, n)

    permuted = np.where(perm.src_flip, (q - x[perm.src]) % q, x[perm.src])
    fresh = gadget.decompose_tensor(permuted)

    plus = gadget.decompose_tensor(x)
    minus = gadget.decompose_tensor((q - x) % q)
    hoisted = [np.where(perm.src_flip, m[perm.src], p[perm.src])
               for p, m in zip(plus, minus)]

    for f, h in zip(fresh, hoisted):
        assert np.array_equal(f, h)


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------

def test_keyswitch_count_formula():
    assert repack_keyswitch_count(16, 16) == 15          # full pack
    assert repack_keyswitch_count(1, 16) == 4            # pure trace
    assert repack_keyswitch_count(4, 32) == 3 + 3        # merge + trace
    assert repack_keyswitch_count(1, 2) == 1


@pytest.mark.parametrize("n_cts", [1, 4, 16, 32])
def test_engine_counters(n_cts):
    n = 32
    basis, sk, auto, s = _stack(n, seed=n_cts)
    cts = _encrypt_batch(n, basis, sk, s, n_cts)
    _, ctr = repack_with_counters(cts, auto, engine="vectorized",
                                  digit_path="hoisted")
    assert ctr.total_keyswitches == repack_keyswitch_count(n_cts, n)
    assert ctr.merge_keyswitches == n_cts - 1
    assert ctr.trace_keyswitches == (n // n_cts).bit_length() - 1
    merge_levels = n_cts.bit_length() - 1
    assert ctr.levels == merge_levels + ctr.trace_keyswitches
    # One digit tensor per keyswitch, attributed to the active path.
    assert ctr.hoisted_decomposes == ctr.total_keyswitches
    assert ctr.fresh_decomposes == 0
    assert ctr.ntt_calls_saved > 0

    _, fresh_ctr = repack_with_counters(cts, auto, engine="vectorized",
                                        digit_path="fresh")
    assert fresh_ctr.hoisted_decomposes == 0
    assert fresh_ctr.fresh_decomposes == fresh_ctr.total_keyswitches


def test_reference_counters_match_vectorized():
    n = 32
    basis, sk, auto, s = _stack(n, seed=11)
    cts = _encrypt_batch(n, basis, sk, s, 8)
    out_ref, ctr_ref = repack_with_counters(cts, auto, engine="reference")
    out_vec, ctr_vec = repack_with_counters(cts, auto, engine="vectorized")
    _assert_identical(out_vec, out_ref)
    assert ctr_ref.total_keyswitches == ctr_vec.total_keyswitches
    assert ctr_ref.merge_keyswitches == ctr_vec.merge_keyswitches
    assert ctr_ref.trace_keyswitches == ctr_vec.trace_keyswitches
    assert ctr_ref.levels == ctr_vec.levels


def test_profiling_records_repack_levels():
    n = 16
    basis, sk, auto, s = _stack(n, seed=21)
    cts = _encrypt_batch(n, basis, sk, s, 4)
    with count_ops() as stats:
        repack_vectorized(cts, auto)
    assert stats.repack_merge_keyswitches == 3
    assert stats.repack_trace_keyswitches == 2
    assert stats.repack_levels == 4  # 2 merge levels + 2 trace levels
    assert stats.repack_ntt_saved > 0
    assert sum(stats.repack_level_hist.values()) == 5


# ---------------------------------------------------------------------------
# Engine mechanics & validation
# ---------------------------------------------------------------------------

def test_engine_memoized_per_keyset():
    n = 16
    basis, sk, auto, s = _stack(n, seed=31)
    eng = RepackEngine.for_keys(auto)
    assert RepackEngine.for_keys(auto) is eng
    cts = _encrypt_batch(n, basis, sk, s, 2)
    # Repeated packs through the cached engine stay correct (key tensors
    # are lifted once and reused).
    for _ in range(2):
        _assert_identical(eng.pack(cts), repack_reference(cts, auto))


def test_unknown_engine_rejected():
    n = 16
    basis, sk, auto, s = _stack(n, seed=41)
    cts = _encrypt_batch(n, basis, sk, s, 2)
    with pytest.raises(ParameterError):
        repack(cts, auto, engine="simd")


def test_unknown_digit_path_rejected():
    n = 16
    basis, sk, auto, s = _stack(n, seed=42)
    cts = _encrypt_batch(n, basis, sk, s, 2)
    with pytest.raises(ParameterError):
        repack_vectorized(cts, auto, digit_path="lazy")


def test_non_power_of_two_rejected():
    n = 16
    basis, sk, auto, s = _stack(n, seed=43)
    cts = _encrypt_batch(n, basis, sk, s, 3)
    with pytest.raises(ParameterError):
        repack_vectorized(cts, auto)


def test_too_many_cts_rejected():
    n = 16
    basis, sk, auto, s = _stack(n, seed=44)
    cts = _encrypt_batch(n, basis, sk, s, 16)
    with pytest.raises(ParameterError):
        repack_vectorized(cts + cts, auto)


def test_empty_batch_rejected():
    n = 16
    basis, sk, auto, s = _stack(n, seed=45)
    with pytest.raises(ParameterError):
        repack_vectorized([], auto)
